// The hoihod wire protocol: one request line in, one response line out.
//
// Grammar (all lines '\n'-terminated; '\r' before '\n' is tolerated):
//
//   request   = lookup | geo | geob | "STATS" | "STATS2" | "METRICS"
//             | "RELOAD" | "GENS" | rollback | delta
//   lookup    = hostname                     ; anything that is not a verb
//   geo       = "GEO" SP subject [SP lat "," lon]
//   geob      = "GEOB" SP count CRLF *count( subject CRLF )
//                                            ; batch: count subject lines
//                                            ; follow the header (1..1024)
//   subject   = hostname | address           ; address needs a fuse context
//   rollback  = "ROLLBACK" SP generation     ; decimal archived generation
//   delta     = "DELTA" SP file              ; model-delta file to apply
//
//   response  = hit | miss | geo-hit | geo-miss | geob-block | stats
//             | stats2 | metrics | reload-ok | reload-err | gens
//             | rollback-ok | rollback-err | delta-ok | delta-err | err
//   hit       = lat "," lon "," code "," method
//   method    = "learned" | "dictionary"     ; how the code was resolved
//   miss      = "MISS"                       ; no convention / unknown code
//   geo-hit   = "GEO," lat "," lon "," code "," source "," score
//               ",candidates=" N ",feasible=" N [",audit=" outcome]
//   source    = "learned" | "dictionary" | "claimed"
//   outcome   = "agree" | "refute" | "unknown"  ; only when a claim was given
//   geo-miss  = "GEO,miss"                   ; no candidate from any signal
//   stats     = "STATS," kv *("," kv)        ; kv = key "=" value
//   stats2    = "STATS2," tkv *("," tkv)     ; tkv = name ":" type "=" value
//                                            ; type = "c" | "g" | "h"
//   metrics   = *( "#" ... | sample ) "# EOF"  ; Prometheus text, multi-line;
//                                            ; clients read until "# EOF"
//   reload-ok = "RELOAD,ok,generation=" N ",conventions=" N
//   reload-err= "RELOAD,error," message
//   gens      = "GENS,serving=" N ",archived=" gen *(";" gen)
//                                            ; "archived=-" when none
//   rollback-ok  = "ROLLBACK,ok,generation=" N ",from=" N ",conventions=" N
//   rollback-err = "ROLLBACK,error," message
//   geob-block = "GEOB," count CRLF *count( geo-hit | geo-miss CRLF )
//                                            ; one line per subject, in
//                                            ; request order; the block is
//                                            ; a single ordered response
//   delta-ok  = "DELTA,ok,generation=" N ",from=" N ",upserts=" N
//               ",removes=" N ",conventions=" N
//   delta-err = "DELTA,error," message
//   err       = "ERR," reason                ; empty/oversized line, unknown
//                                            ; verb, malformed GEO arguments
//
// Verb disambiguation: hostnames never contain spaces, so any line with a
// space whose head is not a known verb — and any spaceless all-caps token
// like "FLUSH" that could only have been meant as a verb — answers a named
// "ERR,unknown_verb" instead of being misread as a (guaranteed-miss)
// lookup. Dotted names remain lookups no matter their case.
//
// STATS is the v1 surface and is frozen: keys, order, and formatting are
// byte-compatible with pre-registry builds. STATS2 exposes every metric in
// the server's registry (typed, histograms with count/sum/percentiles).
// METRICS is the same snapshot in Prometheus text exposition; it is the
// one multi-line response in the protocol, terminated by a "# EOF" line.
//
// Responses preserve request order within a connection. Requests are
// independent across connections; pipelining any number of request lines
// before reading is allowed and is how the load generator reaches peak
// throughput.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/geolocate.h"
#include "fuse/audit.h"
#include "serve/metrics.h"

namespace hoiho::serve {

enum class RequestKind {
  kLookup,
  kGeo,
  kGeoBatch,
  kStats,
  kStats2,
  kMetrics,
  kReload,
  kGens,
  kRollback,
  kDelta,
  kEmpty,
  kUnknownVerb,
};

// Hard cap on GEOB batch size: bounds what one header line can make the
// server buffer before dispatching (the framing holds the whole group).
inline constexpr std::size_t kMaxGeobBatch = 1024;

// One parsed request line. Every verb shares this shape: `kind` selects
// the handler, `error` (when non-empty) is the named usage error the server
// answers as ERR,<error> instead of running the verb — the dispatch table
// in protocol.cc owns all arity/argument checking, so server.cc never
// string-matches a line.
struct Request {
  RequestKind kind = RequestKind::kLookup;
  std::string_view hostname;  // views into the request line; kLookup only

  // kGeo only. `error` non-empty means the arguments were malformed
  // ("geo_usage", "bad_coordinate") and the server should answer ERR,<error>.
  std::string_view subject;
  bool has_claimed = false;
  geo::Coordinate claimed;
  std::string_view error;

  // kRollback only (error is "rollback_usage" when the generation argument
  // is missing or non-numeric).
  std::uint64_t rollback_gen = 0;

  // kGeoBatch only: subject lines that follow the header (error is
  // "geob_usage" when the count is missing, zero, non-numeric, or over
  // kMaxGeobBatch).
  std::size_t geob_count = 0;

  // kDelta only: the model-delta file to apply (error is "delta_usage"
  // when missing).
  std::string_view path;
};

// Classifies one request line (without the trailing newline).
Request parse_request(std::string_view line);

// Fast framing probe for the server's read loop: the subject count of a
// *well-formed* GEOB header line, nullopt otherwise (including over-cap
// counts — a malformed header is answered ERR without consuming any
// subject lines). Shares the parser with parse_request.
std::optional<std::size_t> parse_geob_count(std::string_view line);

// Response formatters. None include the trailing '\n'; the server appends
// it when framing.
std::string format_hit(const core::Geolocation& g);
std::string format_miss();
std::string format_error(std::string_view reason);

// GEO: the fused best verdict plus candidate accounting; `audit` (present
// only when the request carried a claimed coordinate) appends the
// agree/refute/unknown outcome. An unanswered result formats as "GEO,miss".
std::string format_geo(const fuse::FuseResult& result,
                       const std::optional<fuse::AuditOutcome>& audit = std::nullopt);
std::string format_stats(const Metrics::Snapshot& m, std::uint64_t generation,
                         std::size_t conventions, std::size_t programs = 0);

// STATS2: every entry of `snap` as name:type=value (type c/g/h), histograms
// as count;sum;p50;p90;p99, then the model identity as gauges.
std::string format_stats_v2(const obs::Snapshot& snap, std::uint64_t generation,
                            std::size_t conventions, std::size_t programs = 0);

// METRICS: Prometheus text exposition of `snap` plus hoihod_generation /
// hoihod_conventions / hoihod_programs gauges, terminated by a "# EOF"
// line (without its trailing '\n'; the server frames it like any response).
std::string format_metrics_text(const obs::Snapshot& snap, std::uint64_t generation,
                                std::size_t conventions, std::size_t programs = 0);

// GEOB: the block header; the server appends one GEO-formatted line per
// subject after it, in request order.
std::string format_geob_header(std::size_t count);

std::string format_reload_ok(std::uint64_t generation, std::size_t conventions);
std::string format_reload_error(std::string_view message);

// DELTA: what an applied model delta published.
std::string format_delta_ok(std::uint64_t generation, std::uint64_t from,
                            std::size_t upserts, std::size_t removes,
                            std::size_t conventions);
std::string format_delta_error(std::string_view message);

// GENS: the serving generation plus the archived generation numbers
// (semicolon-separated — commas delimit the outer kv list).
std::string format_gens(std::uint64_t serving, const std::vector<std::uint64_t>& archived);
std::string format_rollback_ok(std::uint64_t generation, std::uint64_t from,
                               std::size_t conventions);
std::string format_rollback_error(std::string_view message);

// Response classification (client side: tests, load generator). kMetrics
// matches any '#'-comment line — for a METRICS response, classify the first
// line and consume until "# EOF".
enum class ResponseKind {
  kHit,
  kMiss,
  kGeo,
  kGeoBatch,  // GEOB block header; read `count` more GEO lines
  kStats,
  kStats2,
  kMetrics,
  kReload,
  kReloadError,
  kGens,
  kRollback,
  kRollbackError,
  kDelta,
  kDeltaError,
  kError,
};
ResponseKind classify_response(std::string_view line);

}  // namespace hoiho::serve
