#include "baselines/hloc.h"

#include "geo/coord.h"
#include "util/strings.h"

namespace hoiho::baselines {

namespace {

// A small stand-in for HLOC's 468-entry manual blocklist: common router
// hostname vocabulary that collides with geo codes.
constexpr const char* kDefaultBlocklist[] = {
    "net",  "com",  "org", "core", "edge", "peer", "cust", "host", "atlas",
    "level", "vodafone", "static", "dynamic", "dsl", "fiber", "cable",
    "gig", "eth", "cpe",  // interface vocabulary colliding with IATA codes
};

}  // namespace

Hloc::Hloc(const geo::GeoDictionary& dict, HlocConfig config)
    : dict_(dict), config_(config) {
  for (const char* s : kDefaultBlocklist) blocklist_.insert(s);
}

void Hloc::block(std::string_view token) {
  blocklist_.insert(util::to_lower(token));
}

std::optional<geo::LocationId> Hloc::locate(const dns::Hostname& host, topo::RouterId router,
                                            const measure::Measurements& pings,
                                            bool reachable) const {
  if (!reachable) return std::nullopt;

  // Gather candidate locations from every token (no structural knowledge).
  std::vector<geo::LocationId> candidates;
  for (const util::Token& t : util::alpha_runs(host.prefix())) {
    const std::string token = util::to_lower(t.text);
    if (blocklist_.contains(token)) continue;
    for (geo::HintType type : {geo::HintType::kIata, geo::HintType::kLocode,
                               geo::HintType::kClli, geo::HintType::kCityName}) {
      if (type != geo::HintType::kCityName && token.size() != geo::code_length(type)) continue;
      if (type == geo::HintType::kCityName && token.size() < 4) continue;
      for (geo::LocationId id : dict_.lookup(type, token)) candidates.push_back(id);
    }
  }
  if (candidates.empty()) return std::nullopt;

  // Verify each candidate using only the VPs near it (confirmation bias):
  // the candidate survives if every near-VP sample is speed-of-light
  // consistent with the router being at the candidate. VPs far from the
  // candidate — the ones that could refute it — are never consulted.
  std::optional<geo::LocationId> best;
  for (geo::LocationId id : candidates) {
    const geo::Coordinate& cand = dict_.location(id).coord;
    bool any_sample = false;
    bool refuted = false;
    for (measure::VpId v = 0; v < pings.vps.size() && !refuted; ++v) {
      if (geo::distance_km(cand, pings.vps[v].coord) > config_.vp_radius_km) continue;
      const auto rtt = pings.pings.rtt(router, v);
      if (!rtt) continue;
      any_sample = true;
      if (*rtt < geo::min_rtt_ms(cand, pings.vps[v].coord)) refuted = true;
    }
    if (!any_sample || refuted) continue;
    if (!best || dict_.location(id).population > dict_.location(*best).population) best = id;
  }
  return best;
}

}  // namespace hoiho::baselines
