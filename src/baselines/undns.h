// undns baseline (Spring et al., Rocketfuel 2002) — emulated as the Hoiho
// paper characterizes it (§3.2, §6.1):
//   * a manually assembled, per-suffix ruleset: high precision, because a
//     human interpreted each location code;
//   * stale: last updated years before the evaluation snapshot, so it knows
//     only a subset of today's suffixes and, within a covered suffix, only
//     the location codes that existed when the rules were written.
//
// Since our ground truth comes from the simulator, the "manual" ruleset is
// built from an earlier epoch of the world: a fraction of the operators
// (those that existed when the database was maintained) and, per operator, a
// fraction of its footprint's codes.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>

#include "dns/hostname.h"
#include "geo/dictionary.h"
#include "sim/internet.h"

namespace hoiho::baselines {

struct UndnsConfig {
  double suffix_coverage = 0.75;  // operators present in the old database
  double code_coverage = 0.65;    // per-suffix codes present in the old rules
  std::uint64_t seed = 11;
};

class Undns {
 public:
  // Builds the stale ruleset from an earlier epoch of `world`.
  static Undns from_world(const sim::World& world, const UndnsConfig& config = {});

  std::size_t rule_count() const;

  // Applies the suffix's hand-written dictionary: any token matching a known
  // code yields its (human-verified) location.
  std::optional<geo::LocationId> locate(const dns::Hostname& host) const;

 private:
  // suffix -> (code -> location)
  std::unordered_map<std::string, std::unordered_map<std::string, geo::LocationId>> rules_;
};

}  // namespace hoiho::baselines
