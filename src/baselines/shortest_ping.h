// Shortest Ping (Katz-Bassett et al., IMC 2006) — geolocate the target to
// the location of the vantage point with the smallest RTT (paper §3.1).
// Trammell (2018) showed this captures most of the benefit of delay-based
// geolocation in practice; it is the physics floor our benches compare
// hostname methods against.
#pragma once

#include <optional>

#include "measure/rtt_matrix.h"

namespace hoiho::baselines {

struct ShortestPingResult {
  measure::VpId vp = 0;
  double rtt_ms = 0;
  geo::Coordinate coord;
};

std::optional<ShortestPingResult> shortest_ping(const measure::Measurements& meas,
                                                topo::RouterId r);

}  // namespace hoiho::baselines
