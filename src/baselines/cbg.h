// Constraint-Based Geolocation (Gueye et al., IMC 2004) — the seminal
// delay-based method (paper §3.1).
//
// Each (VP, RTT) sample constrains the target to a disk around the VP of
// radius max_distance_km(rtt). CBG estimates the target at the centroid of
// the intersection of all disks and reports the region width as the error
// estimate. This implementation evaluates the constraint region on a
// regular lat/lon grid; Hoiho uses the same physics as a feasibility test
// only, but CBG is the natural comparison point and is exercised by tests
// and the fig. 5 narrative.
#pragma once

#include <optional>

#include "measure/rtt_matrix.h"

namespace hoiho::baselines {

struct CbgConfig {
  double grid_step_deg = 2.0;  // grid resolution
  double lat_min = -60, lat_max = 72;
};

struct CbgResult {
  geo::Coordinate estimate;  // centroid of the feasible region
  double error_km = 0;       // max distance from centroid to feasible cell
  std::size_t feasible_cells = 0;
};

// Multilaterates router `r`; nullopt when the router has no samples or the
// constraints are contradictory at grid resolution.
std::optional<CbgResult> cbg_locate(const measure::Measurements& meas, topo::RouterId r,
                                    const CbgConfig& config = {});

}  // namespace hoiho::baselines
