#include "baselines/undns.h"

#include <cctype>

#include "util/rng.h"
#include "util/strings.h"

namespace hoiho::baselines {

Undns Undns::from_world(const sim::World& world, const UndnsConfig& config) {
  util::Rng rng(config.seed);
  Undns out;
  const geo::GeoDictionary& dict = *world.dict;
  for (const sim::OperatorSpec& op : world.operators) {
    if (!op.scheme.has_geohint) continue;
    if (!rng.next_bool(config.suffix_coverage)) continue;  // born after 2014
    auto& codes = out.rules_[op.suffix];
    for (geo::LocationId loc : op.footprint) {
      if (!rng.next_bool(config.code_coverage)) continue;  // newer site
      const auto code = sim::geo_code_for(op.scheme, dict, loc);
      if (!code) continue;
      // The human who wrote the rule knew the operator's intent — including
      // custom codes — which is why undns precision is so high.
      codes.emplace(*code, loc);
    }
    if (codes.empty()) out.rules_.erase(op.suffix);
  }
  return out;
}

std::size_t Undns::rule_count() const { return rules_.size(); }

std::optional<geo::LocationId> Undns::locate(const dns::Hostname& host) const {
  const auto it = rules_.find(std::string(host.suffix()));
  if (it == rules_.end()) return std::nullopt;
  const auto& codes = it->second;
  for (const util::Token& t : util::alnum_runs(host.prefix())) {
    const std::string token = util::to_lower(t.text);
    const auto hit = codes.find(token);
    if (hit != codes.end()) return hit->second;
    // Codes may carry trailing digits in hostnames ("lhr15"): try the
    // leading alphabetic part too.
    std::size_t alpha = 0;
    while (alpha < token.size() && std::isalpha(static_cast<unsigned char>(token[alpha])))
      ++alpha;
    if (alpha > 0 && alpha < token.size()) {
      const auto hit2 = codes.find(token.substr(0, alpha));
      if (hit2 != codes.end()) return hit2->second;
    }
  }
  return std::nullopt;
}

}  // namespace hoiho::baselines
