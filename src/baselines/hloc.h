// HLOC baseline (Scheitle et al., TMA 2017) — reimplemented with the
// behaviours the Hoiho paper documents (§3.2, §6.1):
//   * no learned structure: every token of every hostname is looked up in
//     the geolocation dictionaries at run time, minus a hand-built blocklist
//     of strings known not to be geohints;
//   * confirmation bias: a candidate location is verified using only the
//     VPs *near* that candidate; distant VPs that could refute it are never
//     consulted;
//   * no custom geohints: dictionary meanings are taken verbatim;
//   * routers that HLOC's measurement platform cannot probe (paper:
//     nysernet, reachable only from R&E networks) yield no answer.
#pragma once

#include <optional>
#include <set>
#include <string>

#include "geo/dictionary.h"
#include "measure/rtt_matrix.h"
#include "topo/topology.h"

namespace hoiho::baselines {

struct HlocConfig {
  double vp_radius_km = 1000.0;  // only VPs within this range of a candidate are consulted
};

class Hloc {
 public:
  explicit Hloc(const geo::GeoDictionary& dict, HlocConfig config = {});

  // Adds a blocklist entry (strings never considered as geohints).
  void block(std::string_view token);

  // Runs HLOC for one hostname/router. `reachable` is false when HLOC's
  // platform cannot probe the router (it then returns nothing). A candidate
  // is *verified* when the VPs near it (and only those) see RTTs that are
  // speed-of-light consistent with the candidate — distant VPs that could
  // refute it are never consulted, so distant wrong candidates verify
  // trivially (the paper's Waco/Chiclayo example). Verified candidates are
  // ranked by population.
  std::optional<geo::LocationId> locate(const dns::Hostname& host, topo::RouterId router,
                                        const measure::Measurements& pings,
                                        bool reachable = true) const;

 private:
  const geo::GeoDictionary& dict_;
  HlocConfig config_;
  std::set<std::string, std::less<>> blocklist_;
};

}  // namespace hoiho::baselines
