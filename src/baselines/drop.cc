#include "baselines/drop.h"

#include <cctype>
#include <map>
#include <tuple>

#include "util/rng.h"
#include "util/strings.h"

namespace hoiho::baselines {

namespace {

// The leading alphabetic run of a label ("lhr" from "lhr15"), empty if the
// label does not start with a letter.
std::string_view leading_alpha(std::string_view label) {
  std::size_t n = 0;
  while (n < label.size() && std::isalpha(static_cast<unsigned char>(label[n]))) ++n;
  return label.substr(0, n);
}

// Candidate hint types DRoP tries for a token of this width.
std::vector<geo::HintType> types_for_width(std::size_t w) {
  std::vector<geo::HintType> out;
  if (w == 3) out.push_back(geo::HintType::kIata);
  if (w == 4) out.push_back(geo::HintType::kIcao);
  if (w == 5) out.push_back(geo::HintType::kLocode);
  if (w == 6) out.push_back(geo::HintType::kClli);
  if (w >= 4) out.push_back(geo::HintType::kCityName);
  return out;
}

}  // namespace

void Drop::train(const topo::Topology& topo, const measure::Measurements& trace_rtts) {
  util::Rng retention(config_.retention_seed);
  for (const topo::SuffixGroup& group : topo.group_by_suffix()) {
    // A stale ruleset simply lacks some of today's suffixes.
    if (config_.rule_retention < 1.0 && !retention.next_bool(config_.rule_retention)) continue;
    // Tallies per (label_count, pos_from_end, seg_count, seg_pos, type) —
    // one candidate per punctuation-delimited position, as DRoP's rules
    // fixed both the dot- and dash-structure of the hostname.
    struct Tally {
      std::size_t found = 0, consistent = 0;
    };
    std::map<std::tuple<std::size_t, std::size_t, std::size_t, std::size_t, int>, Tally> tallies;

    for (const topo::HostnameRef& ref : group.hostnames) {
      const auto labels = ref.hostname->labels();
      for (std::size_t i = 0; i < labels.size(); ++i) {
        const std::size_t pos_from_end = labels.size() - 1 - i;
        const auto segments = util::split_tokens(labels[i].text, '-');
        for (std::size_t s = 0; s < segments.size(); ++s) {
          const std::string token = util::to_lower(leading_alpha(segments[s].text));
          if (token.empty()) continue;
          for (geo::HintType type : types_for_width(token.size())) {
            const auto ids = dict_.lookup(type, token);
            if (ids.empty()) continue;
            Tally& t = tallies[{labels.size(), pos_from_end, segments.size(), s,
                                static_cast<int>(type)}];
            ++t.found;
            for (geo::LocationId id : ids) {
              if (measure::rtt_consistent(trace_rtts.pings, trace_rtts.vps, ref.router,
                                          dict_.location(id).coord)) {
                ++t.consistent;
                break;
              }
            }
          }
        }
      }
    }

    // Best tally meeting the majority rule becomes the suffix's rule.
    bool found_rule = false;
    std::size_t best_consistent = 0;
    DropRule best_rule;
    for (const auto& [key, t] : tallies) {
      if (t.consistent < config_.min_matches) continue;
      if (static_cast<double>(t.consistent) <=
          config_.majority * static_cast<double>(t.found))
        continue;
      if (t.consistent > best_consistent) {
        best_consistent = t.consistent;
        best_rule.label_count = std::get<0>(key);
        best_rule.pos_from_end = std::get<1>(key);
        best_rule.seg_count = std::get<2>(key);
        best_rule.seg_pos = std::get<3>(key);
        best_rule.type = static_cast<geo::HintType>(std::get<4>(key));
        found_rule = true;
      }
    }
    if (found_rule) rules_.emplace(group.suffix, best_rule);
  }
}

const DropRule* Drop::rule(std::string_view suffix) const {
  const auto it = rules_.find(std::string(suffix));
  return it == rules_.end() ? nullptr : &it->second;
}

std::optional<geo::LocationId> Drop::locate(const dns::Hostname& host) const {
  const DropRule* r = rule(host.suffix());
  if (r == nullptr) return std::nullopt;
  const auto labels = host.labels();
  if (labels.size() != r->label_count) return std::nullopt;  // fig. 2 limitation
  const std::size_t idx = labels.size() - 1 - r->pos_from_end;
  const auto segments = util::split_tokens(labels[idx].text, '-');
  if (segments.size() != r->seg_count || r->seg_pos >= segments.size()) return std::nullopt;
  const std::string token = util::to_lower(leading_alpha(segments[r->seg_pos].text));
  if (token.empty()) return std::nullopt;
  const std::size_t want = geo::code_length(r->type);
  if (want != 0 && token.size() != want) return std::nullopt;
  const auto ids = dict_.lookup(r->type, token);
  if (ids.empty()) return std::nullopt;
  // No RTTs at apply time: break ambiguity by population (DRoP's dictionary
  // was location-unique; ours is not).
  geo::LocationId best = ids[0];
  for (geo::LocationId id : ids)
    if (dict_.location(id).population > dict_.location(best).population) best = id;
  return best;
}

}  // namespace hoiho::baselines
