// DRoP baseline (Huffaker et al., CCR 2014) — reimplemented with the
// limitations the Hoiho paper documents (§3.3, fig. 2):
//   * rules locate the geohint at a fixed label position relative to the end
//     of the hostname, and assume a fixed number of labels — hostnames with
//     extra segments do not match;
//   * extraction is a single sequence (the label's leading alphabetic run);
//   * a rule is accepted when a bare majority (>50%) of its extractions are
//     consistent with training RTTs;
//   * training RTTs are only those observed in the traceroutes that built
//     the topology (coarse constraints — the VP that sees a router in a
//     traceroute is rarely the closest);
//   * the dictionary is used verbatim: no custom geohints are ever learned.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>

#include "geo/dictionary.h"
#include "measure/consistency.h"
#include "topo/topology.h"

namespace hoiho::baselines {

struct DropConfig {
  double majority = 0.5;          // fraction of consistent extractions required
  std::size_t min_matches = 2;    // minimum consistent extractions

  // Fraction of learned rules retained, modelling the staleness of the
  // published 2013 ruleset relative to the evaluation snapshot (suffixes
  // whose conventions changed, networks born later). 1.0 = fresh rules.
  double rule_retention = 1.0;
  std::uint64_t retention_seed = 13;
};

struct DropRule {
  std::size_t label_count = 0;   // prefix labels the rule expects
  std::size_t pos_from_end = 0;  // 0 = label adjacent to the suffix
  std::size_t seg_count = 1;     // dash-segments the hint's label must have
  std::size_t seg_pos = 0;       // which dash-segment carries the hint
  geo::HintType type = geo::HintType::kIata;
};

class Drop {
 public:
  explicit Drop(const geo::GeoDictionary& dict, DropConfig config = {})
      : dict_(dict), config_(config) {}

  // Learns one rule per suffix from the topology and the traceroute-observed
  // RTTs.
  void train(const topo::Topology& topo, const measure::Measurements& trace_rtts);

  std::size_t rule_count() const { return rules_.size(); }
  const DropRule* rule(std::string_view suffix) const;

  // Applies the suffix's rule; geolocation without RTTs (most-populous
  // location of the extracted code). nullopt if no rule, the hostname shape
  // differs from the rule, or the code is unknown.
  std::optional<geo::LocationId> locate(const dns::Hostname& host) const;

 private:
  const geo::GeoDictionary& dict_;
  DropConfig config_;
  std::unordered_map<std::string, DropRule> rules_;
};

}  // namespace hoiho::baselines
