#include "baselines/cbg.h"

#include <cmath>
#include <vector>

#include "geo/coord.h"

namespace hoiho::baselines {

std::optional<CbgResult> cbg_locate(const measure::Measurements& meas, topo::RouterId r,
                                    const CbgConfig& config) {
  // Collect constraints.
  struct Disk {
    geo::Coordinate center;
    double radius_km;
  };
  std::vector<Disk> disks;
  for (measure::VpId v = 0; v < meas.vps.size(); ++v) {
    const auto rtt = meas.pings.rtt(r, v);
    if (!rtt) continue;
    disks.push_back(Disk{meas.vps[v].coord, geo::max_distance_km(*rtt)});
  }
  if (disks.empty()) return std::nullopt;

  // Grid scan for feasible cells.
  std::vector<geo::Coordinate> feasible;
  for (double lat = config.lat_min; lat <= config.lat_max; lat += config.grid_step_deg) {
    for (double lon = -180.0; lon < 180.0; lon += config.grid_step_deg) {
      const geo::Coordinate p{lat, lon};
      bool ok = true;
      for (const Disk& d : disks) {
        if (geo::distance_km(p, d.center) > d.radius_km) {
          ok = false;
          break;
        }
      }
      if (ok) feasible.push_back(p);
    }
  }
  if (feasible.empty()) return std::nullopt;

  // Centroid (adequate at city scale; regions are compact) and width.
  double lat_sum = 0;
  double x = 0, y = 0;  // unit-circle average for longitude wraparound
  for (const geo::Coordinate& p : feasible) {
    lat_sum += p.lat;
    const double rad = p.lon * 3.14159265358979323846 / 180.0;
    x += std::cos(rad);
    y += std::sin(rad);
  }
  CbgResult result;
  result.estimate.lat = lat_sum / static_cast<double>(feasible.size());
  result.estimate.lon = std::atan2(y, x) * 180.0 / 3.14159265358979323846;
  result.feasible_cells = feasible.size();
  for (const geo::Coordinate& p : feasible) {
    result.error_km = std::max(result.error_km, geo::distance_km(result.estimate, p));
  }
  return result;
}

}  // namespace hoiho::baselines
