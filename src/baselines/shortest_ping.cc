#include "baselines/shortest_ping.h"

namespace hoiho::baselines {

std::optional<ShortestPingResult> shortest_ping(const measure::Measurements& meas,
                                                topo::RouterId r) {
  const auto closest = meas.pings.closest_vp(r);
  if (!closest) return std::nullopt;
  ShortestPingResult result;
  result.vp = closest->first;
  result.rtt_ms = closest->second;
  result.coord = meas.vps[closest->first].coord;
  return result;
}

}  // namespace hoiho::baselines
