// Router-level topology model (the ITDK of paper §5.1.3).
//
// A Topology is a set of routers, each with interfaces that may carry a
// hostname (PTR record). Routers are the unit of RTT measurement and of
// ground-truth location; hostnames are the unit of regex evaluation. The
// simulator annotates each router with its true location; topologies loaded
// from real data leave it unset.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "dns/hostname.h"
#include "geo/location.h"
#include "util/arena.h"

namespace hoiho::topo {

using RouterId = std::uint32_t;
inline constexpr RouterId kInvalidRouter = 0xffffffffu;

struct Interface {
  std::string address;                    // textual IP address
  std::optional<dns::Hostname> hostname;  // parsed PTR record, if any
};

struct Router {
  RouterId id = kInvalidRouter;
  std::vector<Interface> interfaces;

  // Ground truth (set by the simulator; kInvalidLocation for real data).
  geo::LocationId true_location = geo::kInvalidLocation;

  bool has_hostname() const {
    for (const Interface& ifc : interfaces)
      if (ifc.hostname) return true;
    return false;
  }
};

// One hostname observation: the router it belongs to plus the parsed name.
struct HostnameRef {
  RouterId router = kInvalidRouter;
  const dns::Hostname* hostname = nullptr;
};

// All hostnames sharing one registered-domain suffix — the unit the learner
// operates on.
struct SuffixGroup {
  std::string suffix;
  std::vector<HostnameRef> hostnames;
};

class Topology {
 public:
  // Adds an empty router, returning its id.
  RouterId add_router(geo::LocationId true_location = geo::kInvalidLocation);

  // Adds an interface; `raw_hostname` may be empty (no PTR record). Invalid
  // hostnames are treated as absent. Returns false if the hostname was
  // supplied but rejected.
  bool add_interface(RouterId router, std::string_view address, std::string_view raw_hostname,
                     const dns::PublicSuffixList& psl = dns::PublicSuffixList::builtin());

  const Router& router(RouterId id) const { return routers_[id]; }
  Router& router(RouterId id) { return routers_[id]; }
  std::span<const Router> routers() const { return routers_; }
  std::size_t size() const { return routers_.size(); }

  std::size_t count_with_hostname() const;

  // Groups hostnames by suffix; groups with fewer than `min_hostnames`
  // entries are dropped. Hostname pointers remain valid while the Topology
  // is alive and unmodified. Groups are sorted by suffix for determinism.
  std::vector<SuffixGroup> group_by_suffix(std::size_t min_hostnames = 1) const;

  // Bytes of canonical hostname text interned in this topology's arena —
  // the per-batch string footprint the streaming learner frees wholesale.
  std::size_t hostname_bytes() const { return arena_.bytes_used(); }

 private:
  std::vector<Router> routers_;
  // Backs every Interface hostname's bytes (dns::Hostname is a view). One
  // arena per topology keeps a streamed batch's names contiguous and makes
  // freeing the batch a chunk drop, not N string frees. Moves with the
  // topology (views stay valid); makes Topology move-only.
  util::Arena arena_;
};

}  // namespace hoiho::topo
