#include "topo/itdk_io.h"

#include <istream>
#include <ostream>
#include <unordered_map>

#include "util/strings.h"

namespace hoiho::topo {

namespace {

// Tab is the only control byte the formats use; anything else below 0x20
// (NUL injection, binary garbage) marks a corrupt line.
bool has_binary_bytes(std::string_view s) {
  for (const char c : s) {
    const unsigned char u = static_cast<unsigned char>(c);
    if (u < 0x20 && c != '\t') return true;
  }
  return false;
}

}  // namespace

void write_nodes(std::ostream& out, const Topology& topo) {
  out << "# hoiho-geo nodes file\n";
  for (const Router& r : topo.routers()) {
    out << "node N" << r.id << ": ";
    for (std::size_t i = 0; i < r.interfaces.size(); ++i) {
      if (i) out << ' ';
      out << r.interfaces[i].address;
    }
    out << '\n';
  }
}

void write_names(std::ostream& out, const Topology& topo) {
  out << "# hoiho-geo names file\n";
  for (const Router& r : topo.routers()) {
    for (const Interface& ifc : r.interfaces) {
      if (ifc.hostname) out << ifc.address << ' ' << ifc.hostname->full << '\n';
    }
  }
}

std::optional<Topology> read_itdk(std::istream& nodes, std::istream* names,
                                  const io::LoadOptions& opt, io::LoadReport* report,
                                  const dns::PublicSuffixList& psl) {
  io::LoadReport local;
  io::LoadReport& rep = report != nullptr ? *report : local;

  // First pass over names (if given): address -> hostname.
  std::unordered_map<std::string, std::string> name_of;
  if (names != nullptr) {
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(*names, line)) {
      ++lineno;
      ++rep.lines;
      if (line.size() > opt.max_line_bytes) {
        if (!rep.skip(opt, "oversized_line", lineno,
                      "names line exceeds " + std::to_string(opt.max_line_bytes) + " bytes"))
          return std::nullopt;
        continue;
      }
      if (line.empty() || line[0] == '#') continue;
      if (has_binary_bytes(line)) {
        if (!rep.skip(opt, "bad_name_line", lineno, "control bytes in names line"))
          return std::nullopt;
        continue;
      }
      const auto fields = util::split(line, " \t");
      if (fields.size() < 2) {
        if (!rep.skip(opt, "bad_name_line", lineno, "expected '<addr> <hostname>'"))
          return std::nullopt;
        continue;
      }
      name_of.emplace(std::string(fields[0]), std::string(fields[1]));
    }
    if (names->bad()) {
      rep.fail("read error in names stream after line " + std::to_string(lineno));
      return std::nullopt;
    }
  }

  Topology topo;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(nodes, line)) {
    ++lineno;
    ++rep.lines;
    if (line.size() > opt.max_line_bytes) {
      if (!rep.skip(opt, "oversized_line", lineno,
                    "nodes line exceeds " + std::to_string(opt.max_line_bytes) + " bytes"))
        return std::nullopt;
      continue;
    }
    if (line.empty() || line[0] == '#') continue;
    if (has_binary_bytes(line)) {
      if (!rep.skip(opt, "bad_node_line", lineno, "control bytes in nodes line"))
        return std::nullopt;
      continue;
    }
    const auto fields = util::split(line, " \t");
    if (fields.size() < 2 || fields[0] != "node") {
      if (!rep.skip(opt, "bad_node_line", lineno, "expected 'node N<id>: addr...'"))
        return std::nullopt;
      continue;
    }
    if (opt.max_records > 0 && topo.size() >= opt.max_records) {
      rep.fail("line " + std::to_string(lineno) + ": more than " +
               std::to_string(opt.max_records) + " routers (record cap)");
      return std::nullopt;
    }
    // fields[1] is "N<id>:" — the id itself is implied by insertion order,
    // as in the real files (ids are dense and ascending).
    const RouterId id = topo.add_router();
    ++rep.records;
    for (std::size_t i = 2; i < fields.size(); ++i) {
      const std::string addr(fields[i]);
      const auto it = name_of.find(addr);
      topo.add_interface(id, addr, it == name_of.end() ? std::string_view{} : it->second, psl);
    }
  }
  if (nodes.bad()) {
    rep.fail("read error in nodes stream after line " + std::to_string(lineno));
    return std::nullopt;
  }
  return topo;
}

std::optional<Topology> read_itdk(std::istream& nodes, std::istream* names, std::string* error,
                                  const dns::PublicSuffixList& psl) {
  io::LoadReport report;
  auto topo = read_itdk(nodes, names, io::LoadOptions{}, &report, psl);
  if (!topo && error != nullptr) *error = report.error;
  return topo;
}

}  // namespace hoiho::topo
