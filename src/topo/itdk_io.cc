#include "topo/itdk_io.h"

#include <istream>
#include <ostream>
#include <unordered_map>

#include "util/strings.h"

namespace hoiho::topo {

void write_nodes(std::ostream& out, const Topology& topo) {
  out << "# hoiho-geo nodes file\n";
  for (const Router& r : topo.routers()) {
    out << "node N" << r.id << ": ";
    for (std::size_t i = 0; i < r.interfaces.size(); ++i) {
      if (i) out << ' ';
      out << r.interfaces[i].address;
    }
    out << '\n';
  }
}

void write_names(std::ostream& out, const Topology& topo) {
  out << "# hoiho-geo names file\n";
  for (const Router& r : topo.routers()) {
    for (const Interface& ifc : r.interfaces) {
      if (ifc.hostname) out << ifc.address << ' ' << ifc.hostname->full << '\n';
    }
  }
}

std::optional<Topology> read_itdk(std::istream& nodes, std::istream* names, std::string* error,
                                  const dns::PublicSuffixList& psl) {
  // First pass over names (if given): address -> hostname.
  std::unordered_map<std::string, std::string> name_of;
  if (names != nullptr) {
    std::string line;
    while (std::getline(*names, line)) {
      if (line.empty() || line[0] == '#') continue;
      const auto fields = util::split(line, " \t");
      if (fields.size() >= 2) name_of.emplace(std::string(fields[0]), std::string(fields[1]));
    }
  }

  Topology topo;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(nodes, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    const auto fields = util::split(line, " \t");
    if (fields.size() < 2 || fields[0] != "node") {
      if (error != nullptr)
        *error = "line " + std::to_string(lineno) + ": expected 'node N<id>: addr...'";
      return std::nullopt;
    }
    // fields[1] is "N<id>:" — the id itself is implied by insertion order,
    // as in the real files (ids are dense and ascending).
    const RouterId id = topo.add_router();
    for (std::size_t i = 2; i < fields.size(); ++i) {
      const std::string addr(fields[i]);
      const auto it = name_of.find(addr);
      topo.add_interface(id, addr, it == name_of.end() ? std::string_view{} : it->second, psl);
    }
  }
  return topo;
}

}  // namespace hoiho::topo
