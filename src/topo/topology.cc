#include "topo/topology.h"

#include <algorithm>
#include <map>

namespace hoiho::topo {

RouterId Topology::add_router(geo::LocationId true_location) {
  const RouterId id = static_cast<RouterId>(routers_.size());
  Router r;
  r.id = id;
  r.true_location = true_location;
  routers_.push_back(std::move(r));
  return id;
}

bool Topology::add_interface(RouterId router, std::string_view address,
                             std::string_view raw_hostname, const dns::PublicSuffixList& psl) {
  Interface ifc;
  ifc.address = std::string(address);
  bool ok = true;
  if (!raw_hostname.empty()) {
    ifc.hostname = dns::parse_hostname(raw_hostname, arena_, psl);
    ok = ifc.hostname.has_value();
  }
  routers_[router].interfaces.push_back(std::move(ifc));
  return ok;
}

std::size_t Topology::count_with_hostname() const {
  std::size_t n = 0;
  for (const Router& r : routers_)
    if (r.has_hostname()) ++n;
  return n;
}

std::vector<SuffixGroup> Topology::group_by_suffix(std::size_t min_hostnames) const {
  std::map<std::string, std::vector<HostnameRef>, std::less<>> groups;
  for (const Router& r : routers_) {
    for (const Interface& ifc : r.interfaces) {
      if (!ifc.hostname) continue;
      const std::string_view suffix = ifc.hostname->suffix();
      auto it = groups.find(suffix);
      if (it == groups.end()) it = groups.emplace(std::string(suffix), std::vector<HostnameRef>{}).first;
      it->second.push_back(HostnameRef{r.id, &*ifc.hostname});
    }
  }
  std::vector<SuffixGroup> out;
  out.reserve(groups.size());
  for (auto& [suffix, refs] : groups) {
    if (refs.size() < min_hostnames) continue;
    out.push_back(SuffixGroup{suffix, std::move(refs)});
  }
  return out;
}

}  // namespace hoiho::topo
