// ITDK-style file I/O.
//
// CAIDA's ITDK ships router-level graphs as a `.nodes` file (one router per
// line with its interface addresses) and a DNS names file (address ->
// hostname). This module reads and writes the same shapes so topologies can
// be exchanged with tooling that understands the CAIDA formats:
//
//   nodes file:   node N<id>:  <addr> <addr> ...
//   names file:   <addr> <hostname>           (one per line)
//
// Lines starting with '#' are comments in both files.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "topo/topology.h"

namespace hoiho::topo {

// Writes the `.nodes` view of `topo`.
void write_nodes(std::ostream& out, const Topology& topo);

// Writes the names view of `topo` (only interfaces that have hostnames).
void write_names(std::ostream& out, const Topology& topo);

// Reads a topology from a nodes stream plus an optional names stream.
// Unknown addresses in `names` are ignored (the real files overlap only
// partially too). Returns std::nullopt with a message in *error on
// malformed node lines.
std::optional<Topology> read_itdk(std::istream& nodes, std::istream* names,
                                  std::string* error = nullptr,
                                  const dns::PublicSuffixList& psl = dns::PublicSuffixList::builtin());

}  // namespace hoiho::topo
