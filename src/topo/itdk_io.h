// ITDK-style file I/O.
//
// CAIDA's ITDK ships router-level graphs as a `.nodes` file (one router per
// line with its interface addresses) and a DNS names file (address ->
// hostname). This module reads and writes the same shapes so topologies can
// be exchanged with tooling that understands the CAIDA formats:
//
//   nodes file:   node N<id>:  <addr> <addr> ...
//   names file:   <addr> <hostname>           (one per line)
//
// Lines starting with '#' are comments in both files.
//
// Real ITDK snapshots are hundreds of millions of lines collected from the
// live Internet; individual lines get truncated, interleaved, or corrupted.
// The io::LoadOptions overload supports lenient loading — skip the bad
// line, count it in the io::LoadReport — so one mangled record does not
// discard the dataset. Skip categories: oversized_line, bad_node_line,
// bad_name_line.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "io/load_report.h"
#include "topo/topology.h"

namespace hoiho::topo {

// Writes the `.nodes` view of `topo`.
void write_nodes(std::ostream& out, const Topology& topo);

// Writes the names view of `topo` (only interfaces that have hostnames).
void write_names(std::ostream& out, const Topology& topo);

// Reads a topology from a nodes stream plus an optional names stream.
// Unknown addresses in `names` are ignored (the real files overlap only
// partially too). Strict mode (opt.lenient = false) fails with a named
// error in report->error on the first malformed line; lenient mode skips
// and counts it. opt.max_records caps accepted routers in both modes.
std::optional<Topology> read_itdk(std::istream& nodes, std::istream* names,
                                  const io::LoadOptions& opt, io::LoadReport* report = nullptr,
                                  const dns::PublicSuffixList& psl = dns::PublicSuffixList::builtin());

// Strict-mode convenience wrapper (the original first-error-fatal API).
std::optional<Topology> read_itdk(std::istream& nodes, std::istream* names,
                                  std::string* error = nullptr,
                                  const dns::PublicSuffixList& psl = dns::PublicSuffixList::builtin());

}  // namespace hoiho::topo
