#include "fuse/rtt_filter.h"

#include <limits>

namespace hoiho::fuse {

RttFilter::RttFilter(const measure::Measurements& meas, const measure::ExpectedRttGrid* grid,
                     RttFilterConfig config)
    : meas_(meas), grid_(grid), config_(config) {
  // Same guard as ConsistencyCache: a grid built for a different VP set
  // would index garbage, so it is ignored rather than trusted.
  if (grid_ != nullptr && grid_->vp_count() != meas_.vps.size()) grid_ = nullptr;
}

double RttFilter::expected_rtt(const Candidate& c, measure::VpId v) const {
  if (grid_ != nullptr && c.location != geo::kInvalidLocation &&
      c.location < grid_->location_count()) {
    return grid_->at(c.location, v);
  }
  return geo::min_rtt_ms(c.coord, meas_.vps[v].coord);
}

std::size_t RttFilter::apply(topo::RouterId r, std::span<Candidate> candidates) const {
  if (r >= meas_.pings.router_count() || !meas_.pings.responsive(r)) return 0;
  std::size_t infeasible = 0;
  for (Candidate& c : candidates) {
    if (!c.coord.valid()) continue;
    double margin = std::numeric_limits<double>::infinity();
    bool any = false;
    for (measure::VpId v = 0; v < meas_.vps.size(); ++v) {
      const auto measured = meas_.pings.rtt(r, v);
      if (!measured) continue;
      any = true;
      const double headroom = *measured + config_.slack_ms - expected_rtt(c, v);
      if (headroom < margin) margin = headroom;
    }
    if (!any) continue;  // responsive() guarantees a sample, but stay defensive
    c.rtt_checked = true;
    c.margin_ms = margin;
    c.feasible = margin >= 0.0;
    if (!c.feasible) ++infeasible;
  }
  return infeasible;
}

}  // namespace hoiho::fuse
