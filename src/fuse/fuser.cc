#include "fuse/fuser.h"

#include <algorithm>
#include <charconv>
#include <istream>

#include "util/csv.h"

namespace hoiho::fuse {

namespace {

// fuse_rank_score buckets: scores live in [0, 1], so decile bounds give the
// histogram real resolution (the registry's default bounds are latency ns).
constexpr double kScoreBounds[] = {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0};

// Builds the (location x VP) speed-of-light grid when it fits the cap;
// null (per-candidate haversine fallback, same doubles) when it does not.
std::unique_ptr<measure::ExpectedRttGrid> maybe_build_grid(const geo::GeoDictionary& dict,
                                                           const measure::Measurements& meas,
                                                           std::size_t max_grid_cells) {
  if (meas.vps.empty() || dict.size() * meas.vps.size() > max_grid_cells) return nullptr;
  std::vector<geo::Coordinate> coords(dict.size());
  for (std::size_t id = 0; id < coords.size(); ++id)
    coords[id] = dict.location(static_cast<geo::LocationId>(id)).coord;
  return std::make_unique<measure::ExpectedRttGrid>(coords, meas.vps);
}

}  // namespace

std::optional<std::vector<SubjectRow>> load_subjects(std::istream& in,
                                                     const io::LoadOptions& opt,
                                                     io::LoadReport* report) {
  io::LoadReport local;
  io::LoadReport& rep = report != nullptr ? *report : local;
  std::vector<SubjectRow> rows;

  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    ++rep.lines;
    if (line.size() > opt.max_line_bytes) {
      if (!rep.skip(opt, "oversized_line", lineno,
                    "line exceeds " + std::to_string(opt.max_line_bytes) + " bytes"))
        return std::nullopt;
      continue;
    }
    if (line.empty() || line[0] == '#') continue;
    const util::CsvRow row = util::parse_csv_line(line);
    if (row.empty()) continue;
    if (row.size() != 2 && row.size() != 3) {
      if (!rep.skip(opt, "bad_fields", lineno, "need subject,router[,hostname]"))
        return std::nullopt;
      continue;
    }
    SubjectRow sr;
    sr.subject = row[0];
    if (sr.subject.empty()) {
      if (!rep.skip(opt, "bad_fields", lineno, "empty subject")) return std::nullopt;
      continue;
    }
    std::uint32_t router = 0;
    const auto [ptr, ec] =
        std::from_chars(row[1].data(), row[1].data() + row[1].size(), router);
    if (ec != std::errc() || ptr != row[1].data() + row[1].size()) {
      if (!rep.skip(opt, "bad_number", lineno, "non-numeric router id")) return std::nullopt;
      continue;
    }
    sr.router = router;
    if (row.size() == 3) sr.hostname = row[2];
    if (opt.max_records > 0 && rows.size() >= opt.max_records) {
      rep.fail("line " + std::to_string(lineno) + ": more than " +
               std::to_string(opt.max_records) + " rows (record cap)");
      return std::nullopt;
    }
    rows.push_back(std::move(sr));
    ++rep.records;
  }
  if (in.bad()) {
    rep.fail("stream read failure");
    return std::nullopt;
  }
  return rows;
}

FuseMetrics::FuseMetrics(obs::Registry& registry)
    : candidates(registry.counter("fuse_candidates")),
      rtt_infeasible(registry.counter("fuse_rtt_infeasible")),
      rank_score(registry.histogram("fuse_rank_score", kScoreBounds)) {}

std::shared_ptr<const FuseContext> FuseContext::build(const topo::Topology& topology,
                                                      measure::Measurements meas,
                                                      const geo::GeoDictionary& dict,
                                                      PopulationPrior prior,
                                                      std::size_t max_grid_cells) {
  auto ctx = std::shared_ptr<FuseContext>(new FuseContext());
  ctx->meas_ = std::move(meas);
  ctx->prior_ = std::move(prior);
  for (const topo::Router& router : topology.routers()) {
    for (const topo::Interface& ifc : router.interfaces) {
      if (!ifc.address.empty()) ctx->subjects_.emplace(ifc.address, router.id);
      if (ifc.hostname) ctx->subjects_.emplace(ifc.hostname->full, router.id);
    }
  }
  if (const std::size_t r = topology.size(); r > 0) {
    ctx->router_hostname_.resize(r);
    for (const topo::Router& router : topology.routers()) {
      for (const topo::Interface& ifc : router.interfaces) {
        if (ifc.hostname && ctx->router_hostname_[router.id].empty()) {
          ctx->router_hostname_[router.id] = ifc.hostname->full;
          break;
        }
      }
    }
  }
  ctx->grid_ = maybe_build_grid(dict, ctx->meas_, max_grid_cells);
  return ctx;
}

std::shared_ptr<const FuseContext> FuseContext::build(std::span<const SubjectRow> subjects,
                                                      measure::Measurements meas,
                                                      const geo::GeoDictionary& dict,
                                                      PopulationPrior prior,
                                                      std::size_t max_grid_cells) {
  auto ctx = std::shared_ptr<FuseContext>(new FuseContext());
  ctx->meas_ = std::move(meas);
  ctx->prior_ = std::move(prior);
  topo::RouterId max_router = 0;
  bool any = false;
  for (const SubjectRow& sr : subjects) {
    if (sr.subject.empty() || sr.router == topo::kInvalidRouter) continue;
    ctx->subjects_.emplace(sr.subject, sr.router);
    if (!sr.hostname.empty()) ctx->subjects_.emplace(sr.hostname, sr.router);
    max_router = std::max(max_router, sr.router);
    any = true;
  }
  if (any) {
    ctx->router_hostname_.resize(static_cast<std::size_t>(max_router) + 1);
    for (const SubjectRow& sr : subjects) {
      if (sr.router == topo::kInvalidRouter) continue;
      std::string& slot = ctx->router_hostname_[sr.router];
      if (!slot.empty()) continue;
      // Prefer the explicit hostname column; else a dotted subject is its
      // own hostname (a bare address is not extractable).
      if (!sr.hostname.empty()) {
        slot = sr.hostname;
      } else if (sr.subject.find('.') != std::string::npos &&
                 sr.subject.find_first_not_of("0123456789.") != std::string::npos) {
        slot = sr.subject;
      }
    }
  }
  ctx->grid_ = maybe_build_grid(dict, ctx->meas_, max_grid_cells);
  return ctx;
}

FuseResult Fuser::fuse(std::string_view subject,
                       const std::optional<geo::Coordinate>& claimed) const {
  FuseResult out;
  if (ctx_ != nullptr) out.router = ctx_->router_for(subject);

  out.set = gather_candidates(geolocator_, subject, claimed);
  if (!out.set.matched && ctx_ != nullptr && out.router != topo::kInvalidRouter) {
    // The subject was an interface address (or an unnamed alias): extract
    // from the router's representative hostname instead.
    const std::string_view hostname = ctx_->hostname_for(out.router);
    if (!hostname.empty() && hostname != subject)
      out.set = gather_candidates(geolocator_, hostname, claimed);
  }
  metrics_.candidates.add(out.set.candidates.size());

  if (ctx_ != nullptr && out.router != topo::kInvalidRouter) {
    const RttFilter filter(ctx_->measurements(), ctx_->grid(), config_.rtt);
    const std::size_t infeasible = filter.apply(out.router, out.set.candidates);
    metrics_.rtt_infeasible.add(infeasible);
    for (const Candidate& c : out.set.candidates)
      if (c.rtt_checked) {
        out.rtt_constrained = true;
        break;
      }
  }

  const Ranker ranker(geolocator_.dictionary(),
                      ctx_ != nullptr ? &ctx_->prior() : nullptr, config_.rank);
  out.verdicts = ranker.rank(out.set);
  if (out.answered()) metrics_.rank_score.observe(out.best().score);
  return out;
}

}  // namespace hoiho::fuse
