#include "fuse/rank.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <istream>

#include "util/csv.h"
#include "util/strings.h"

namespace hoiho::fuse {

namespace {

bool parse_u64(const std::string& s, std::uint64_t* out) {
  if (s.empty()) return false;
  for (const char c : s)
    if (c < '0' || c > '9') return false;
  char* end = nullptr;
  *out = std::strtoull(s.c_str(), &end, 10);
  return end == s.c_str() + s.size();
}

double nc_confidence(const CandidateSet& set, const Candidate& c) {
  if (c.source == Source::kClaimed) return 0.50;
  switch (set.cls) {
    case core::NcClass::kGood: return 0.95;
    case core::NcClass::kPromising: return 0.70;
    case core::NcClass::kPoor: return 0.40;
  }
  return 0.40;
}

}  // namespace

std::optional<PopulationPrior> PopulationPrior::load(std::istream& in,
                                                     const geo::GeoDictionary& dict,
                                                     const io::LoadOptions& opt,
                                                     io::LoadReport* report) {
  io::LoadReport local;
  io::LoadReport& rep = report != nullptr ? *report : local;
  PopulationPrior prior;

  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    ++rep.lines;
    if (line.size() > opt.max_line_bytes) {
      if (!rep.skip(opt, "oversized_line", lineno,
                    "line exceeds " + std::to_string(opt.max_line_bytes) + " bytes"))
        return std::nullopt;
      continue;
    }
    if (line.empty() || line[0] == '#') continue;
    const util::CsvRow row = util::parse_csv_line(line);
    if (row.empty()) continue;
    // city,country,population or city,state,country,population.
    if (row.size() != 3 && row.size() != 4) {
      if (!rep.skip(opt, "bad_fields", lineno, "need 3 or 4 fields")) return std::nullopt;
      continue;
    }
    const std::string& city = row[0];
    const std::string state = row.size() == 4 ? util::to_lower(row[1]) : std::string();
    const std::string country = util::to_lower(row[row.size() - 2]);
    std::uint64_t population = 0;
    if (!parse_u64(row.back(), &population)) {
      if (!rep.skip(opt, "bad_number", lineno, "non-numeric population")) return std::nullopt;
      continue;
    }
    if (opt.max_records > 0 && rep.records >= opt.max_records) {
      rep.fail("line " + std::to_string(lineno) + ": more than " +
               std::to_string(opt.max_records) + " rows (record cap)");
      return std::nullopt;
    }
    const auto ids = dict.lookup(geo::HintType::kCityName, geo::squash_place_name(city));
    std::size_t applied = 0;
    for (const geo::LocationId id : ids) {
      if (!country.empty() && !dict.matches_country(country, id)) continue;
      if (!state.empty() && !dict.matches_state(state, id)) continue;
      prior.set(id, population);
      ++applied;
    }
    if (applied == 0) {
      if (!rep.skip(opt, "unknown_place", lineno, "no dictionary location matches '" + city +
                                                      (state.empty() ? "" : "," + state) + "," +
                                                      country + "'"))
        return std::nullopt;
      continue;
    }
    ++rep.records;
  }
  if (in.bad()) {
    rep.fail("stream read failure");
    return std::nullopt;
  }
  return prior;
}

std::vector<Verdict> Ranker::rank(CandidateSet& set) const {
  std::vector<Verdict> verdicts;
  verdicts.reserve(set.candidates.size());
  for (Candidate& c : set.candidates) {
    const double nc_conf = nc_confidence(set, c);

    double rtt_score = 0.5;  // unchecked: no evidence either way
    if (c.rtt_checked) {
      rtt_score = c.feasible
                      ? 0.5 + 0.5 * std::min(1.0, c.margin_ms / config_.margin_norm_ms)
                      : 0.0;
    }

    const std::uint64_t pop = c.location != geo::kInvalidLocation
                                  ? (prior_ != nullptr ? prior_->population(dict_, c.location)
                                                       : dict_.location(c.location).population)
                                  : 0;
    const double pop_score =
        std::min(1.0, std::log10(static_cast<double>(pop) + 1.0) / 8.0);

    c.score = config_.w_nc * nc_conf + config_.w_rtt * rtt_score + config_.w_pop * pop_score;

    Verdict v;
    v.location = c.location;
    v.coord = c.coord;
    v.source = c.source;
    v.feasible = c.feasible;
    v.rtt_checked = c.rtt_checked;
    v.margin_ms = c.margin_ms;
    v.score = c.score;
    v.evidence = "code=" + (set.matched ? set.code : std::string("-"));
    v.evidence += " hint=";
    v.evidence += geo::to_string(set.hint);
    v.evidence += " src=";
    v.evidence += to_string(c.source);
    v.evidence += " cls=";
    v.evidence += core::to_string(set.cls);
    v.evidence += " rtt=";
    if (!c.rtt_checked) {
      v.evidence += "unchecked";
    } else if (!c.feasible) {
      v.evidence += "infeasible(" + util::fmt_double(c.margin_ms, 1) + "ms)";
    } else {
      v.evidence += "+" + util::fmt_double(c.margin_ms, 1) + "ms";
    }
    v.evidence += " pop=" + util::fmt_count(pop);
    verdicts.push_back(std::move(v));
  }
  std::stable_sort(verdicts.begin(), verdicts.end(), [](const Verdict& a, const Verdict& b) {
    if (a.score != b.score) return a.score > b.score;
    if (a.location != b.location) return a.location < b.location;
    return static_cast<int>(a.source) < static_cast<int>(b.source);
  });
  return verdicts;
}

}  // namespace hoiho::fuse
