// Geolocation-feed audit: score a claimed IP -> location feed against fused
// verdicts ("IP Geolocation through Reverse DNS"'s headline use case; see
// PAPERS.md and DESIGN.md §13).
//
// For each feed row (subject, claimed lat/lon) the auditor fuses the
// hostname and RTT evidence and classifies the claim:
//
//   agree   — the claim sits within agree_km of some RTT-feasible fused
//             candidate (the feed and our evidence tell the same story);
//   refute  — the evidence contradicts the claim: the claimed coordinate is
//             RTT-infeasible for the subject's router, or every feasible
//             hostname-derived candidate is farther than agree_km away;
//   unknown — no convention covers the hostname and no measurement
//             constrains the claim; the auditor has nothing to say.
//
// Verdicts are per-row and deterministic; the summary is exact accounting
// (rows == agree + refute + unknown), mirrored into the registry as
// audit_agree / audit_refute / audit_unknown counters.
#pragma once

#include <iosfwd>
#include <span>

#include "fuse/fuser.h"

namespace hoiho::fuse {

enum class AuditOutcome : std::uint8_t { kAgree, kRefute, kUnknown };

std::string_view to_string(AuditOutcome o);

struct AuditConfig {
  // A claim within this great-circle distance of a feasible candidate
  // agrees with it (feeds are city-granular; 100 km ~ metro radius).
  double agree_km = 100.0;
  FuseConfig fuse;
};

// One audited feed row.
struct AuditRow {
  std::string subject;
  geo::Coordinate claimed;
  AuditOutcome outcome = AuditOutcome::kUnknown;
  double nearest_km = -1.0;  // claim -> nearest feasible candidate; -1 if none
  double top_score = 0.0;    // best fused verdict's score (0 when unanswered)
  std::string evidence;      // the deciding verdict's evidence string
};

struct AuditSummary {
  std::size_t rows = 0;
  std::size_t agree = 0;
  std::size_t refute = 0;
  std::size_t unknown = 0;
};

// A feed row as loaded: subject,lat,lon.
struct FeedRow {
  std::string subject;
  geo::Coordinate claimed;
};

// Lenient feed loader (io::LoadReport machinery): `subject,lat,lon` CSV,
// '#' comments allowed. Skip categories: bad_fields, bad_number,
// bad_coords, oversized_line.
std::optional<std::vector<FeedRow>> load_feed(std::istream& in, const io::LoadOptions& opt = {},
                                              io::LoadReport* report = nullptr);

// The audit decision kernel, shared by Auditor::audit and the GEO verb:
// classifies `claimed` against an already-fused result (fused with the claim
// in the candidate set, so the claim carries its own RTT verdict).
// `nearest_km` (claim -> nearest feasible non-claimed verdict; -1 if none)
// and `evidence` (the deciding verdict's evidence string) are optional
// out-params.
AuditOutcome classify_claim(const FuseResult& fused, const geo::Coordinate& claimed,
                            double agree_km, double* nearest_km = nullptr,
                            std::string* evidence = nullptr);

class Auditor {
 public:
  // `ctx` may be null — the auditor then has no RTT evidence and can only
  // agree/refute on hostname-derived candidates. `registry` non-null wires
  // the audit_* counters. Referents must outlive the Auditor.
  Auditor(const core::Geolocator& geolocator, const FuseContext* ctx = nullptr,
          AuditConfig config = {}, obs::Registry* registry = nullptr);

  // Audits one claim. Thread-safe (const, immutable state).
  AuditRow audit(std::string_view subject, const geo::Coordinate& claimed) const;

  // Audits a whole feed, accumulating the summary and counters.
  AuditSummary audit_feed(std::span<const FeedRow> feed,
                          std::vector<AuditRow>* rows = nullptr) const;

  const AuditConfig& config() const { return config_; }

 private:
  Fuser fuser_;
  AuditConfig config_;
  obs::Counter agree_, refute_, unknown_;
};

}  // namespace hoiho::fuse
