// Candidate gathering: step one of the fusion pipeline (DESIGN.md §13).
//
// A hostname's naming convention usually narrows its location to one city,
// but not always: dictionary codes are ambiguous ("melbourne" is FL and AU,
// "hnd" is Henderson and Tokyo), and a claimed location from an external
// feed may disagree with what the hostname encodes. A CandidateSet holds
// every location still in play after extraction — the learned geohint or
// all dictionary siblings that survived cc/st narrowing, plus the claimed
// coordinate when one was supplied — annotated with where each came from.
// The RTT filter (fuse/rtt_filter.h) then prunes by physics and the Ranker
// (fuse/rank.h) orders what survives.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/geolocate.h"

namespace hoiho::fuse {

// Where a candidate location came from, in rank-tiebreak order.
enum class Source : std::uint8_t {
  kLearned,     // the convention's stage-4 learned geohint
  kDictionary,  // dictionary expansion of the extracted code
  kClaimed,     // caller-supplied claimed location (GEO verb, audit feed)
};

std::string_view to_string(Source s);

struct Candidate {
  geo::LocationId location = geo::kInvalidLocation;  // kInvalid for raw claimed coords
  geo::Coordinate coord;
  Source source = Source::kDictionary;

  // Filled by RttFilter::apply. `rtt_checked` is false when the subject had
  // no RTT samples (or no filter ran): feasibility is then vacuous, not
  // evidence. `margin_ms` is the tightest constraint's headroom — the
  // minimum over sampled VPs of (measured + slack - speed-of-light bound);
  // negative means some VP's measurement is physically impossible from this
  // candidate, i.e. infeasible.
  bool rtt_checked = false;
  bool feasible = true;
  double margin_ms = 0.0;

  // Filled by Ranker::rank (fuse/rank.h).
  double score = 0.0;
};

// Candidates for one subject plus the extraction evidence they share.
struct CandidateSet {
  std::vector<Candidate> candidates;

  bool matched = false;  // a convention matched and decoded a code
  std::string code;      // extracted geohint ("" when !matched)
  core::Role role = core::Role::kIata;
  geo::HintType hint = geo::HintType::kIata;
  std::string suffix;    // convention that matched
  core::NcClass cls = core::NcClass::kGood;
  bool via_learned = false;

  // The hostname-only answer (Geolocator::locate), for baselining fusion
  // against extraction alone. kInvalidLocation when !matched.
  geo::LocationId hostname_best = geo::kInvalidLocation;
};

// Gathers candidates for `hostname`: the convention's narrowed dictionary
// siblings (or its single learned location) via locate_detailed, plus
// `claimed` appended last when given. A hostname no convention covers still
// yields the claimed candidate, so a claimed-only audit can proceed on RTT
// evidence alone. Candidate order is deterministic: dictionary order, then
// claimed.
CandidateSet gather_candidates(const core::Geolocator& geolocator, std::string_view hostname,
                               const std::optional<geo::Coordinate>& claimed = std::nullopt);

}  // namespace hoiho::fuse
