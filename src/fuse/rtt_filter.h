// RTT speed-of-light feasibility: step two of the fusion pipeline.
//
// The same physics as the learner's rtt_consistent() (measure/consistency.h),
// applied per candidate and reported as a continuous margin rather than a
// verdict: for every VP with a measured minimum RTT to the subject's router,
// the speed-of-light bound from the candidate location must not exceed
// measured + slack. The *tightest* constraint's headroom is the candidate's
// margin — negative means infeasible (some measurement is physically
// impossible from there), and a large positive margin means the RTT evidence
// barely constrains the candidate at all. The Ranker turns the margin into a
// score; CBG-style slack (baselines/cbg.h uses the same constant family)
// absorbs last-mile queueing so a lone inflated sample doesn't refute a true
// location.
//
// Expected RTTs come from the shared ExpectedRttGrid when one covers the
// candidate (same doubles as the learner's cache), else from a direct
// haversine — claimed coordinates are not dictionary locations and always
// take the haversine path. A filter is immutable after construction and
// safe to share across threads.
#pragma once

#include <span>

#include "fuse/candidate.h"
#include "measure/consistency_cache.h"

namespace hoiho::fuse {

struct RttFilterConfig {
  // Added to every measured RTT before comparing against the bound. 0
  // reproduces the learner's strict test; a few ms tolerates asymmetric
  // paths and timestamping error (CBG's additive correction).
  double slack_ms = 0.0;
};

class RttFilter {
 public:
  // `grid`, if non-null, must cover the dictionary locations candidates are
  // drawn from and `meas.vps` (a mismatched VP count is ignored, matching
  // ConsistencyCache), and must outlive the filter. Both referents must
  // outlive the filter.
  RttFilter(const measure::Measurements& meas, const measure::ExpectedRttGrid* grid = nullptr,
            RttFilterConfig config = {});

  // Tests every candidate against router `r`'s measured minima, setting
  // rtt_checked / feasible / margin_ms in place. Returns the number marked
  // infeasible. A router with no samples constrains nothing (all candidates
  // keep rtt_checked == false); candidates with invalid coordinates are
  // skipped the same way.
  std::size_t apply(topo::RouterId r, std::span<Candidate> candidates) const;

  const RttFilterConfig& config() const { return config_; }

 private:
  double expected_rtt(const Candidate& c, measure::VpId v) const;

  const measure::Measurements& meas_;
  const measure::ExpectedRttGrid* grid_;
  RttFilterConfig config_;
};

}  // namespace hoiho::fuse
