#include "fuse/audit.h"

#include <cstdlib>
#include <istream>

#include "util/csv.h"

namespace hoiho::fuse {

namespace {

bool parse_double(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  *out = std::strtod(s.c_str(), &end);
  return end == s.c_str() + s.size();
}

}  // namespace

std::string_view to_string(AuditOutcome o) {
  switch (o) {
    case AuditOutcome::kAgree: return "agree";
    case AuditOutcome::kRefute: return "refute";
    case AuditOutcome::kUnknown: return "unknown";
  }
  return "?";
}

std::optional<std::vector<FeedRow>> load_feed(std::istream& in, const io::LoadOptions& opt,
                                              io::LoadReport* report) {
  io::LoadReport local;
  io::LoadReport& rep = report != nullptr ? *report : local;
  std::vector<FeedRow> feed;

  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    ++rep.lines;
    if (line.size() > opt.max_line_bytes) {
      if (!rep.skip(opt, "oversized_line", lineno,
                    "line exceeds " + std::to_string(opt.max_line_bytes) + " bytes"))
        return std::nullopt;
      continue;
    }
    if (line.empty() || line[0] == '#') continue;
    const util::CsvRow row = util::parse_csv_line(line);
    if (row.empty()) continue;
    if (row.size() != 3) {
      if (!rep.skip(opt, "bad_fields", lineno, "need subject,lat,lon")) return std::nullopt;
      continue;
    }
    FeedRow fr;
    fr.subject = row[0];
    if (fr.subject.empty()) {
      if (!rep.skip(opt, "bad_fields", lineno, "empty subject")) return std::nullopt;
      continue;
    }
    if (!parse_double(row[1], &fr.claimed.lat) || !parse_double(row[2], &fr.claimed.lon)) {
      if (!rep.skip(opt, "bad_number", lineno, "non-numeric coordinates")) return std::nullopt;
      continue;
    }
    if (!fr.claimed.valid()) {
      if (!rep.skip(opt, "bad_coords", lineno, "invalid coordinates")) return std::nullopt;
      continue;
    }
    if (opt.max_records > 0 && feed.size() >= opt.max_records) {
      rep.fail("line " + std::to_string(lineno) + ": more than " +
               std::to_string(opt.max_records) + " rows (record cap)");
      return std::nullopt;
    }
    feed.push_back(std::move(fr));
    ++rep.records;
  }
  if (in.bad()) {
    rep.fail("stream read failure");
    return std::nullopt;
  }
  return feed;
}

Auditor::Auditor(const core::Geolocator& geolocator, const FuseContext* ctx, AuditConfig config,
                 obs::Registry* registry)
    : fuser_(geolocator, ctx, config.fuse,
             registry != nullptr ? FuseMetrics(*registry) : FuseMetrics()),
      config_(config) {
  if (registry != nullptr) {
    agree_ = registry->counter("audit_agree");
    refute_ = registry->counter("audit_refute");
    unknown_ = registry->counter("audit_unknown");
  }
}

AuditOutcome classify_claim(const FuseResult& fused, const geo::Coordinate& claimed,
                            double agree_km, double* nearest_km, std::string* evidence) {
  const Verdict* claimed_verdict = nullptr;
  const Verdict* nearest = nullptr;  // nearest feasible hostname-derived verdict
  double nearest_distance = -1.0;
  for (const Verdict& v : fused.verdicts) {
    if (v.source == Source::kClaimed) {
      claimed_verdict = &v;
      continue;
    }
    if (!v.feasible) continue;  // physics already refuted this candidate
    const double km = geo::distance_km(claimed, v.coord);
    if (nearest == nullptr || km < nearest_distance) {
      nearest = &v;
      nearest_distance = km;
    }
  }
  if (nearest_km != nullptr) *nearest_km = nearest_distance;

  AuditOutcome outcome;
  const Verdict* deciding = nullptr;
  if (claimed_verdict != nullptr && claimed_verdict->rtt_checked &&
      !claimed_verdict->feasible) {
    // Some VP's measured RTT is impossible from the claimed coordinate —
    // the strongest contradiction available, independent of the hostname.
    outcome = AuditOutcome::kRefute;
    deciding = claimed_verdict;
  } else if (nearest != nullptr && nearest_distance <= agree_km) {
    outcome = AuditOutcome::kAgree;
    deciding = nearest;
  } else if (nearest != nullptr) {
    // The hostname names a feasible location, and it is not where the feed
    // says. (A claim merely *near* no candidate with no hostname evidence
    // stays unknown — absence of evidence is not refutation.)
    outcome = AuditOutcome::kRefute;
    deciding = nearest;
  } else {
    outcome = AuditOutcome::kUnknown;
    deciding = claimed_verdict;  // may be null (invalid claim never fused)
  }
  if (evidence != nullptr && deciding != nullptr) *evidence = deciding->evidence;
  return outcome;
}

AuditRow Auditor::audit(std::string_view subject, const geo::Coordinate& claimed) const {
  AuditRow row;
  row.subject = std::string(subject);
  row.claimed = claimed;
  if (!claimed.valid()) {
    row.outcome = AuditOutcome::kUnknown;
    return row;
  }

  // Fuse with the claim in the candidate set so it gets its own RTT verdict.
  const FuseResult fused = fuser_.fuse(subject, claimed);
  if (fused.answered()) row.top_score = fused.best().score;
  row.outcome =
      classify_claim(fused, claimed, config_.agree_km, &row.nearest_km, &row.evidence);
  return row;
}

AuditSummary Auditor::audit_feed(std::span<const FeedRow> feed,
                                 std::vector<AuditRow>* rows) const {
  AuditSummary summary;
  for (const FeedRow& fr : feed) {
    AuditRow row = audit(fr.subject, fr.claimed);
    ++summary.rows;
    switch (row.outcome) {
      case AuditOutcome::kAgree:
        ++summary.agree;
        agree_.inc();
        break;
      case AuditOutcome::kRefute:
        ++summary.refute;
        refute_.inc();
        break;
      case AuditOutcome::kUnknown:
        ++summary.unknown;
        unknown_.inc();
        break;
    }
    if (rows != nullptr) rows->push_back(std::move(row));
  }
  return summary;
}

}  // namespace hoiho::fuse
