// The fusion facade: candidate gathering x RTT feasibility x population
// prior, in one call (DESIGN.md §13).
//
//   auto ctx = fuse::FuseContext::build(topology, measurements, dict);
//   fuse::Fuser fuser(geolocator, ctx.get());
//   fuse::FuseResult r = fuser.fuse("core1.mel1.example.net");
//   // r.verdicts.front() is the best location with score + evidence
//
// A FuseContext is the measurement half of the equation: the RTT campaign,
// a subject (IP address or hostname) -> router index so a GEO request can
// find its measurements, the shared speed-of-light grid, and the population
// prior. It is immutable after build() and shared by reference-count — in
// the serving subsystem it rides inside the ModelSnapshot, surviving model
// hot-reloads unchanged (measurements churn on a different cadence than
// models). A Fuser with a null context still works: candidates are gathered
// and ranked on extraction + population alone, with every candidate left
// rtt_checked == false — deterministic, just less discriminating.
//
// Thread safety: Fuser and FuseContext are immutable after construction;
// fuse() is const and safe from any number of threads (the serve workers
// call it concurrently on one snapshot).
#pragma once

#include <iosfwd>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>

#include "fuse/rank.h"
#include "fuse/rtt_filter.h"
#include "obs/metrics.h"
#include "topo/topology.h"

namespace hoiho::fuse {

// One subject binding as loaded from a subjects file (hoihod --subjects):
// which router a servable subject (address or hostname) belongs to, plus an
// optional representative hostname to extract from when the subject itself
// is an address.
struct SubjectRow {
  std::string subject;
  topo::RouterId router = topo::kInvalidRouter;
  std::string hostname;  // "" = the subject is its own hostname
};

// Lenient loader for `subject,router[,hostname]` CSV ('#' comments
// allowed); router is the dense 0-based id the RTT campaign samples refer
// to. Skip categories: oversized_line, bad_fields, bad_number.
std::optional<std::vector<SubjectRow>> load_subjects(std::istream& in,
                                                     const io::LoadOptions& opt = {},
                                                     io::LoadReport* report = nullptr);

struct FuseConfig {
  RttFilterConfig rtt;
  RankerConfig rank;
};

// Immutable measurement-side context, shared across fuse() calls.
class FuseContext {
 public:
  // Builds the context: indexes every interface address and hostname of
  // `topology` to its router, and precomputes the (location x VP)
  // speed-of-light grid when `dict.size() * vps <= max_grid_cells` (same
  // cap semantics as HoihoConfig::max_grid_cells; over the cap the filter
  // falls back to per-candidate haversines, same doubles).
  static std::shared_ptr<const FuseContext> build(const topo::Topology& topology,
                                                  measure::Measurements meas,
                                                  const geo::GeoDictionary& dict,
                                                  PopulationPrior prior = {},
                                                  std::size_t max_grid_cells = 4u << 20);

  // Same, from explicit subject bindings instead of a topology — what the
  // daemon uses (hoihod loads a subjects file next to the RTT campaign
  // rather than a full ITDK topology).
  static std::shared_ptr<const FuseContext> build(std::span<const SubjectRow> subjects,
                                                  measure::Measurements meas,
                                                  const geo::GeoDictionary& dict,
                                                  PopulationPrior prior = {},
                                                  std::size_t max_grid_cells = 4u << 20);

  const measure::Measurements& measurements() const { return meas_; }
  const measure::ExpectedRttGrid* grid() const { return grid_.get(); }
  const PopulationPrior& prior() const { return prior_; }
  std::size_t subject_count() const { return subjects_.size(); }

  // The router a subject (interface address or hostname) maps to, or
  // kInvalidRouter if unknown.
  topo::RouterId router_for(std::string_view subject) const {
    const auto it = subjects_.find(subject);
    return it == subjects_.end() ? topo::kInvalidRouter : it->second;
  }

  // A representative hostname of router `r` (its first named interface),
  // empty if the router has none — what fuse() extracts from when the
  // subject was an address.
  std::string_view hostname_for(topo::RouterId r) const {
    return r < router_hostname_.size() ? std::string_view(router_hostname_[r])
                                       : std::string_view();
  }

 private:
  FuseContext() = default;

  using SubjectMap = std::unordered_map<std::string, topo::RouterId,
                                        util::TransparentStringHash, std::equal_to<>>;

  measure::Measurements meas_;
  std::unique_ptr<measure::ExpectedRttGrid> grid_;
  PopulationPrior prior_;
  SubjectMap subjects_;
  std::vector<std::string> router_hostname_;  // [router] -> first named interface
};

// Registry handles for the fusion counters, built once and reused (the
// serve hot path must not take the registry mutex per request). Default
// construction gives no-op handles (instrumentation-free fusing).
struct FuseMetrics {
  obs::Counter candidates;       // fuse_candidates: candidates gathered
  obs::Counter rtt_infeasible;   // fuse_rtt_infeasible: candidates refuted by physics
  obs::Histogram rank_score;     // fuse_rank_score: top-verdict scores (0..1)

  FuseMetrics() = default;
  explicit FuseMetrics(obs::Registry& registry);
};

struct FuseResult {
  CandidateSet set;               // candidates + extraction evidence
  std::vector<Verdict> verdicts;  // ranked best-first; empty = no answer
  topo::RouterId router = topo::kInvalidRouter;  // resolved subject, if any
  bool rtt_constrained = false;   // verdicts were filtered against real RTTs

  bool answered() const { return !verdicts.empty(); }
  const Verdict& best() const { return verdicts.front(); }
};

class Fuser {
 public:
  // `ctx` may be null (no RTT constraint, dictionary populations only).
  // Referents must outlive the Fuser.
  Fuser(const core::Geolocator& geolocator, const FuseContext* ctx = nullptr,
        FuseConfig config = {}, FuseMetrics metrics = {})
      : geolocator_(geolocator), ctx_(ctx), config_(config), metrics_(metrics) {}

  // Fuses all signals for `subject` — a hostname, or an interface address
  // the context can map to a router whose hostname is then looked up. The
  // optional claimed coordinate joins the candidate set as Source::kClaimed.
  FuseResult fuse(std::string_view subject,
                  const std::optional<geo::Coordinate>& claimed = std::nullopt) const;

  const core::Geolocator& geolocator() const { return geolocator_; }
  const FuseContext* context() const { return ctx_; }
  const FuseConfig& config() const { return config_; }

 private:
  const core::Geolocator& geolocator_;
  const FuseContext* ctx_;
  FuseConfig config_;
  FuseMetrics metrics_;
};

}  // namespace hoiho::fuse
