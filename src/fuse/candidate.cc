#include "fuse/candidate.h"

namespace hoiho::fuse {

std::string_view to_string(Source s) {
  switch (s) {
    case Source::kLearned: return "learned";
    case Source::kDictionary: return "dictionary";
    case Source::kClaimed: return "claimed";
  }
  return "?";
}

CandidateSet gather_candidates(const core::Geolocator& geolocator, std::string_view hostname,
                               const std::optional<geo::Coordinate>& claimed) {
  CandidateSet out;
  const geo::GeoDictionary& dict = geolocator.dictionary();
  if (const auto detail = geolocator.locate_detailed(hostname)) {
    out.matched = true;
    out.code = detail->best.code;
    out.role = detail->best.role;
    out.hint = detail->hint;
    out.suffix = detail->best.suffix;
    out.cls = detail->cls;
    out.via_learned = detail->best.via_learned;
    out.hostname_best = detail->best.location;
    out.candidates.reserve(detail->candidates.size() + (claimed ? 1 : 0));
    for (const geo::LocationId id : detail->candidates) {
      Candidate c;
      c.location = id;
      c.coord = dict.location(id).coord;
      c.source = detail->best.via_learned ? Source::kLearned : Source::kDictionary;
      out.candidates.push_back(c);
    }
  }
  if (claimed && claimed->valid()) {
    Candidate c;
    c.coord = *claimed;
    c.source = Source::kClaimed;
    out.candidates.push_back(c);
  }
  return out;
}

}  // namespace hoiho::fuse
