// Ranking: step three of the fusion pipeline (DESIGN.md §13 has the
// worked score formula).
//
// Each surviving candidate gets a score in [0, 1]:
//
//   score = w_nc * nc_conf + w_rtt * rtt_score + w_pop * pop_score
//
//   nc_conf    — how much the extraction is worth: the convention's stage-5
//                class (kGood 0.95, kPromising 0.70, kPoor 0.40), used as-is
//                for the learned location and for dictionary expansion;
//                claimed locations carry a flat 0.50 (an external feed is
//                trusted less than a good convention, more than a poor one).
//   rtt_score  — 0 if RTT-infeasible; 0.5 when unchecked (no measurements
//                is the absence of evidence, not evidence); otherwise
//                0.5 + 0.5 * min(1, margin / margin_norm_ms) — candidates
//                the physics barely admits score just above neutral,
//                comfortably feasible ones approach 1.
//   pop_score  — log-scaled population prior, log10(pop + 1) / 8 clamped to
//                [0, 1] (10^8 ~ the largest metro): routers live where
//                people do, the paper's own stage-4 tiebreak.
//
// Determinism: scores are pure arithmetic over the candidate fields, and
// ties break by (location id, source), so the ranked order is byte-identical
// across runs and thread counts — tests/test_fuse.cc pins this.
#pragma once

#include <iosfwd>
#include <optional>
#include <unordered_map>

#include "fuse/candidate.h"
#include "io/load_report.h"

namespace hoiho::fuse {

// Population overrides keyed by location, layered over the dictionary's
// population field without mutating the shared dictionary. Loaded leniently
// from CSV: `city,country,population` or `city,state,country,population`
// ('#' comments allowed); rows are resolved by squashed city name narrowed
// by country (and state when given). Skip categories: bad_fields,
// bad_number, unknown_place, oversized_line.
class PopulationPrior {
 public:
  PopulationPrior() = default;

  // The effective population of `id`: the override if one was loaded, else
  // the dictionary's own field.
  std::uint64_t population(const geo::GeoDictionary& dict, geo::LocationId id) const {
    const auto it = overrides_.find(id);
    return it != overrides_.end() ? it->second : dict.location(id).population;
  }

  std::size_t override_count() const { return overrides_.size(); }
  void set(geo::LocationId id, std::uint64_t population) { overrides_[id] = population; }

  // Lenient loader (io::LoadReport machinery, like the RTT and ITDK
  // loaders). Strict mode fails on the first bad row; lenient mode skips
  // and counts. nullopt only on a failed load (report->error set).
  static std::optional<PopulationPrior> load(std::istream& in, const geo::GeoDictionary& dict,
                                             const io::LoadOptions& opt = {},
                                             io::LoadReport* report = nullptr);

 private:
  std::unordered_map<geo::LocationId, std::uint64_t> overrides_;
};

struct RankerConfig {
  double w_nc = 0.50;
  double w_rtt = 0.35;
  double w_pop = 0.15;
  // RTT margin (ms) at which rtt_score saturates at 1.0.
  double margin_norm_ms = 50.0;
};

// One ranked answer: a location (or raw claimed coordinate), its score, and
// a human-readable account of the inputs that produced the score.
struct Verdict {
  geo::LocationId location = geo::kInvalidLocation;
  geo::Coordinate coord;
  Source source = Source::kDictionary;
  bool feasible = true;
  bool rtt_checked = false;
  double margin_ms = 0.0;
  double score = 0.0;
  std::string evidence;  // "code=mel hint=iata src=dictionary cls=good rtt=+12.3ms pop=4.5M"
};

class Ranker {
 public:
  explicit Ranker(const geo::GeoDictionary& dict, const PopulationPrior* prior = nullptr,
                  RankerConfig config = {})
      : dict_(dict), prior_(prior), config_(config) {}

  // Scores every candidate (writing Candidate::score back) and returns the
  // verdicts ordered best-first: score descending, ties by location id then
  // source. Infeasible candidates stay in the list — an auditor wants to
  // see what was refuted — but score at most w_nc + w_pop.
  std::vector<Verdict> rank(CandidateSet& set) const;

  const RankerConfig& config() const { return config_; }

 private:
  const geo::GeoDictionary& dict_;
  const PopulationPrior* prior_;
  RankerConfig config_;
};

}  // namespace hoiho::fuse
