# Empty compiler generated dependencies file for geolocate_hostnames.
# This may be replaced when dependencies are built.
