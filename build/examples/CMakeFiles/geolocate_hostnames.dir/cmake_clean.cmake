file(REMOVE_RECURSE
  "CMakeFiles/geolocate_hostnames.dir/geolocate_hostnames.cpp.o"
  "CMakeFiles/geolocate_hostnames.dir/geolocate_hostnames.cpp.o.d"
  "geolocate_hostnames"
  "geolocate_hostnames.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geolocate_hostnames.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
