file(REMOVE_RECURSE
  "CMakeFiles/custom_geohints.dir/custom_geohints.cpp.o"
  "CMakeFiles/custom_geohints.dir/custom_geohints.cpp.o.d"
  "custom_geohints"
  "custom_geohints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_geohints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
