# Empty dependencies file for custom_geohints.
# This may be replaced when dependencies are built.
