file(REMOVE_RECURSE
  "CMakeFiles/itdk_pipeline.dir/itdk_pipeline.cpp.o"
  "CMakeFiles/itdk_pipeline.dir/itdk_pipeline.cpp.o.d"
  "itdk_pipeline"
  "itdk_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/itdk_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
