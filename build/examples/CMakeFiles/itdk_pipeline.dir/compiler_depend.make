# Empty compiler generated dependencies file for itdk_pipeline.
# This may be replaced when dependencies are built.
