# Empty dependencies file for table5_learned_hints.
# This may be replaced when dependencies are built.
