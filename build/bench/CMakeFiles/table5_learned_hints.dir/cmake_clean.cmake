file(REMOVE_RECURSE
  "CMakeFiles/table5_learned_hints.dir/table5_learned_hints.cc.o"
  "CMakeFiles/table5_learned_hints.dir/table5_learned_hints.cc.o.d"
  "table5_learned_hints"
  "table5_learned_hints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_learned_hints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
