# Empty compiler generated dependencies file for fig5_rtt.
# This may be replaced when dependencies are built.
