file(REMOVE_RECURSE
  "CMakeFiles/fig5_rtt.dir/fig5_rtt.cc.o"
  "CMakeFiles/fig5_rtt.dir/fig5_rtt.cc.o.d"
  "fig5_rtt"
  "fig5_rtt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_rtt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
