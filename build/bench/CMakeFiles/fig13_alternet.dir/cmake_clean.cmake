file(REMOVE_RECURSE
  "CMakeFiles/fig13_alternet.dir/fig13_alternet.cc.o"
  "CMakeFiles/fig13_alternet.dir/fig13_alternet.cc.o.d"
  "fig13_alternet"
  "fig13_alternet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_alternet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
