# Empty dependencies file for fig13_alternet.
# This may be replaced when dependencies are built.
