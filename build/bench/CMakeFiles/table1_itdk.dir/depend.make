# Empty dependencies file for table1_itdk.
# This may be replaced when dependencies are built.
