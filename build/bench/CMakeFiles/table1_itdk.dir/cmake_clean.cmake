file(REMOVE_RECURSE
  "CMakeFiles/table1_itdk.dir/table1_itdk.cc.o"
  "CMakeFiles/table1_itdk.dir/table1_itdk.cc.o.d"
  "table1_itdk"
  "table1_itdk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_itdk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
