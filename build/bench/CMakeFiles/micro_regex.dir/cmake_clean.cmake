file(REMOVE_RECURSE
  "CMakeFiles/micro_regex.dir/micro_regex.cc.o"
  "CMakeFiles/micro_regex.dir/micro_regex.cc.o.d"
  "micro_regex"
  "micro_regex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_regex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
