# Empty compiler generated dependencies file for micro_regex.
# This may be replaced when dependencies are built.
