# Empty dependencies file for table4_types.
# This may be replaced when dependencies are built.
