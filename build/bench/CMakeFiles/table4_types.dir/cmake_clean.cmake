file(REMOVE_RECURSE
  "CMakeFiles/table4_types.dir/table4_types.cc.o"
  "CMakeFiles/table4_types.dir/table4_types.cc.o.d"
  "table4_types"
  "table4_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
