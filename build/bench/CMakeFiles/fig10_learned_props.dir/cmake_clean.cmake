file(REMOVE_RECURSE
  "CMakeFiles/fig10_learned_props.dir/fig10_learned_props.cc.o"
  "CMakeFiles/fig10_learned_props.dir/fig10_learned_props.cc.o.d"
  "fig10_learned_props"
  "fig10_learned_props.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_learned_props.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
