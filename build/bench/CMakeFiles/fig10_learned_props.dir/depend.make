# Empty dependencies file for fig10_learned_props.
# This may be replaced when dependencies are built.
