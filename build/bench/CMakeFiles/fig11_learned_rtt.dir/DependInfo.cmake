
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig11_learned_rtt.cc" "bench/CMakeFiles/fig11_learned_rtt.dir/fig11_learned_rtt.cc.o" "gcc" "bench/CMakeFiles/fig11_learned_rtt.dir/fig11_learned_rtt.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hoiho_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hoiho_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hoiho_regex.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hoiho_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hoiho_measure.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hoiho_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hoiho_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hoiho_geo_lib.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hoiho_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
