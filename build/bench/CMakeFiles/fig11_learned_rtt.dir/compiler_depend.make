# Empty compiler generated dependencies file for fig11_learned_rtt.
# This may be replaced when dependencies are built.
