file(REMOVE_RECURSE
  "CMakeFiles/fig11_learned_rtt.dir/fig11_learned_rtt.cc.o"
  "CMakeFiles/fig11_learned_rtt.dir/fig11_learned_rtt.cc.o.d"
  "fig11_learned_rtt"
  "fig11_learned_rtt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_learned_rtt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
