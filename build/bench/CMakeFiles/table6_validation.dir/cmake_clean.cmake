file(REMOVE_RECURSE
  "CMakeFiles/table6_validation.dir/table6_validation.cc.o"
  "CMakeFiles/table6_validation.dir/table6_validation.cc.o.d"
  "table6_validation"
  "table6_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
