file(REMOVE_RECURSE
  "CMakeFiles/test_hostname.dir/test_hostname.cc.o"
  "CMakeFiles/test_hostname.dir/test_hostname.cc.o.d"
  "test_hostname"
  "test_hostname.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hostname.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
