# Empty dependencies file for test_hostname.
# This may be replaced when dependencies are built.
