# Empty compiler generated dependencies file for test_rtt_io.
# This may be replaced when dependencies are built.
