file(REMOVE_RECURSE
  "CMakeFiles/test_rtt_io.dir/test_rtt_io.cc.o"
  "CMakeFiles/test_rtt_io.dir/test_rtt_io.cc.o.d"
  "test_rtt_io"
  "test_rtt_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rtt_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
