file(REMOVE_RECURSE
  "CMakeFiles/test_geolocate.dir/test_geolocate.cc.o"
  "CMakeFiles/test_geolocate.dir/test_geolocate.cc.o.d"
  "test_geolocate"
  "test_geolocate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_geolocate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
