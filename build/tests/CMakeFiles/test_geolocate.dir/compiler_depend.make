# Empty compiler generated dependencies file for test_geolocate.
# This may be replaced when dependencies are built.
