file(REMOVE_RECURSE
  "CMakeFiles/test_coord.dir/test_coord.cc.o"
  "CMakeFiles/test_coord.dir/test_coord.cc.o.d"
  "test_coord"
  "test_coord.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_coord.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
