file(REMOVE_RECURSE
  "CMakeFiles/test_learn.dir/test_learn.cc.o"
  "CMakeFiles/test_learn.dir/test_learn.cc.o.d"
  "test_learn"
  "test_learn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_learn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
