# Empty dependencies file for test_regex_gen.
# This may be replaced when dependencies are built.
