file(REMOVE_RECURSE
  "CMakeFiles/test_regex_gen.dir/test_regex_gen.cc.o"
  "CMakeFiles/test_regex_gen.dir/test_regex_gen.cc.o.d"
  "test_regex_gen"
  "test_regex_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_regex_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
