file(REMOVE_RECURSE
  "CMakeFiles/test_nc_io.dir/test_nc_io.cc.o"
  "CMakeFiles/test_nc_io.dir/test_nc_io.cc.o.d"
  "test_nc_io"
  "test_nc_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nc_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
