# Empty dependencies file for test_nc_io.
# This may be replaced when dependencies are built.
