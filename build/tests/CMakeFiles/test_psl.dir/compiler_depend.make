# Empty compiler generated dependencies file for test_psl.
# This may be replaced when dependencies are built.
