file(REMOVE_RECURSE
  "CMakeFiles/test_psl.dir/test_psl.cc.o"
  "CMakeFiles/test_psl.dir/test_psl.cc.o.d"
  "test_psl"
  "test_psl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_psl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
