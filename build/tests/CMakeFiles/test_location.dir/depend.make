# Empty dependencies file for test_location.
# This may be replaced when dependencies are built.
