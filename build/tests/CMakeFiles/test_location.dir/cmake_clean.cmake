file(REMOVE_RECURSE
  "CMakeFiles/test_location.dir/test_location.cc.o"
  "CMakeFiles/test_location.dir/test_location.cc.o.d"
  "test_location"
  "test_location.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_location.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
