# Empty dependencies file for test_apparent.
# This may be replaced when dependencies are built.
