file(REMOVE_RECURSE
  "CMakeFiles/test_apparent.dir/test_apparent.cc.o"
  "CMakeFiles/test_apparent.dir/test_apparent.cc.o.d"
  "test_apparent"
  "test_apparent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_apparent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
