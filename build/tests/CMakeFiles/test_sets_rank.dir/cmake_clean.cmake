file(REMOVE_RECURSE
  "CMakeFiles/test_sets_rank.dir/test_sets_rank.cc.o"
  "CMakeFiles/test_sets_rank.dir/test_sets_rank.cc.o.d"
  "test_sets_rank"
  "test_sets_rank.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sets_rank.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
