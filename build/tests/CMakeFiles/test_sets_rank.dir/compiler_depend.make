# Empty compiler generated dependencies file for test_sets_rank.
# This may be replaced when dependencies are built.
