file(REMOVE_RECURSE
  "CMakeFiles/test_measure.dir/test_measure.cc.o"
  "CMakeFiles/test_measure.dir/test_measure.cc.o.d"
  "test_measure"
  "test_measure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_measure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
