file(REMOVE_RECURSE
  "libhoiho_baselines.a"
)
