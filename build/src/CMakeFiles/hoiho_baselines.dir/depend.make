# Empty dependencies file for hoiho_baselines.
# This may be replaced when dependencies are built.
