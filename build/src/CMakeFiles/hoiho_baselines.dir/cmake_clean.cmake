file(REMOVE_RECURSE
  "CMakeFiles/hoiho_baselines.dir/baselines/cbg.cc.o"
  "CMakeFiles/hoiho_baselines.dir/baselines/cbg.cc.o.d"
  "CMakeFiles/hoiho_baselines.dir/baselines/drop.cc.o"
  "CMakeFiles/hoiho_baselines.dir/baselines/drop.cc.o.d"
  "CMakeFiles/hoiho_baselines.dir/baselines/hloc.cc.o"
  "CMakeFiles/hoiho_baselines.dir/baselines/hloc.cc.o.d"
  "CMakeFiles/hoiho_baselines.dir/baselines/shortest_ping.cc.o"
  "CMakeFiles/hoiho_baselines.dir/baselines/shortest_ping.cc.o.d"
  "CMakeFiles/hoiho_baselines.dir/baselines/undns.cc.o"
  "CMakeFiles/hoiho_baselines.dir/baselines/undns.cc.o.d"
  "libhoiho_baselines.a"
  "libhoiho_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hoiho_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
