
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/cbg.cc" "src/CMakeFiles/hoiho_baselines.dir/baselines/cbg.cc.o" "gcc" "src/CMakeFiles/hoiho_baselines.dir/baselines/cbg.cc.o.d"
  "/root/repo/src/baselines/drop.cc" "src/CMakeFiles/hoiho_baselines.dir/baselines/drop.cc.o" "gcc" "src/CMakeFiles/hoiho_baselines.dir/baselines/drop.cc.o.d"
  "/root/repo/src/baselines/hloc.cc" "src/CMakeFiles/hoiho_baselines.dir/baselines/hloc.cc.o" "gcc" "src/CMakeFiles/hoiho_baselines.dir/baselines/hloc.cc.o.d"
  "/root/repo/src/baselines/shortest_ping.cc" "src/CMakeFiles/hoiho_baselines.dir/baselines/shortest_ping.cc.o" "gcc" "src/CMakeFiles/hoiho_baselines.dir/baselines/shortest_ping.cc.o.d"
  "/root/repo/src/baselines/undns.cc" "src/CMakeFiles/hoiho_baselines.dir/baselines/undns.cc.o" "gcc" "src/CMakeFiles/hoiho_baselines.dir/baselines/undns.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hoiho_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hoiho_regex.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hoiho_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hoiho_measure.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hoiho_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hoiho_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hoiho_geo_lib.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hoiho_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
