# Empty compiler generated dependencies file for hoiho_topo.
# This may be replaced when dependencies are built.
