file(REMOVE_RECURSE
  "libhoiho_topo.a"
)
