
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topo/itdk_io.cc" "src/CMakeFiles/hoiho_topo.dir/topo/itdk_io.cc.o" "gcc" "src/CMakeFiles/hoiho_topo.dir/topo/itdk_io.cc.o.d"
  "/root/repo/src/topo/topology.cc" "src/CMakeFiles/hoiho_topo.dir/topo/topology.cc.o" "gcc" "src/CMakeFiles/hoiho_topo.dir/topo/topology.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hoiho_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hoiho_geo_lib.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hoiho_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
