file(REMOVE_RECURSE
  "CMakeFiles/hoiho_topo.dir/topo/itdk_io.cc.o"
  "CMakeFiles/hoiho_topo.dir/topo/itdk_io.cc.o.d"
  "CMakeFiles/hoiho_topo.dir/topo/topology.cc.o"
  "CMakeFiles/hoiho_topo.dir/topo/topology.cc.o.d"
  "libhoiho_topo.a"
  "libhoiho_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hoiho_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
