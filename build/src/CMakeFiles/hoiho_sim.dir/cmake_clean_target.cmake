file(REMOVE_RECURSE
  "libhoiho_sim.a"
)
