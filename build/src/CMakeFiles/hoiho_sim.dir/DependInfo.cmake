
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/internet.cc" "src/CMakeFiles/hoiho_sim.dir/sim/internet.cc.o" "gcc" "src/CMakeFiles/hoiho_sim.dir/sim/internet.cc.o.d"
  "/root/repo/src/sim/naming.cc" "src/CMakeFiles/hoiho_sim.dir/sim/naming.cc.o" "gcc" "src/CMakeFiles/hoiho_sim.dir/sim/naming.cc.o.d"
  "/root/repo/src/sim/probing.cc" "src/CMakeFiles/hoiho_sim.dir/sim/probing.cc.o" "gcc" "src/CMakeFiles/hoiho_sim.dir/sim/probing.cc.o.d"
  "/root/repo/src/sim/scenario.cc" "src/CMakeFiles/hoiho_sim.dir/sim/scenario.cc.o" "gcc" "src/CMakeFiles/hoiho_sim.dir/sim/scenario.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hoiho_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hoiho_measure.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hoiho_geo_lib.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hoiho_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hoiho_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
