# Empty compiler generated dependencies file for hoiho_sim.
# This may be replaced when dependencies are built.
