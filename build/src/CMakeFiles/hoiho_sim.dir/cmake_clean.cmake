file(REMOVE_RECURSE
  "CMakeFiles/hoiho_sim.dir/sim/internet.cc.o"
  "CMakeFiles/hoiho_sim.dir/sim/internet.cc.o.d"
  "CMakeFiles/hoiho_sim.dir/sim/naming.cc.o"
  "CMakeFiles/hoiho_sim.dir/sim/naming.cc.o.d"
  "CMakeFiles/hoiho_sim.dir/sim/probing.cc.o"
  "CMakeFiles/hoiho_sim.dir/sim/probing.cc.o.d"
  "CMakeFiles/hoiho_sim.dir/sim/scenario.cc.o"
  "CMakeFiles/hoiho_sim.dir/sim/scenario.cc.o.d"
  "libhoiho_sim.a"
  "libhoiho_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hoiho_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
