file(REMOVE_RECURSE
  "libhoiho_geo_lib.a"
)
