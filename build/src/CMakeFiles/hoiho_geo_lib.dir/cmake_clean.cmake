file(REMOVE_RECURSE
  "CMakeFiles/hoiho_geo_lib.dir/geo/builtin_data.cc.o"
  "CMakeFiles/hoiho_geo_lib.dir/geo/builtin_data.cc.o.d"
  "CMakeFiles/hoiho_geo_lib.dir/geo/coord.cc.o"
  "CMakeFiles/hoiho_geo_lib.dir/geo/coord.cc.o.d"
  "CMakeFiles/hoiho_geo_lib.dir/geo/dictionary.cc.o"
  "CMakeFiles/hoiho_geo_lib.dir/geo/dictionary.cc.o.d"
  "CMakeFiles/hoiho_geo_lib.dir/geo/dictionary_io.cc.o"
  "CMakeFiles/hoiho_geo_lib.dir/geo/dictionary_io.cc.o.d"
  "CMakeFiles/hoiho_geo_lib.dir/geo/location.cc.o"
  "CMakeFiles/hoiho_geo_lib.dir/geo/location.cc.o.d"
  "libhoiho_geo_lib.a"
  "libhoiho_geo_lib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hoiho_geo_lib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
