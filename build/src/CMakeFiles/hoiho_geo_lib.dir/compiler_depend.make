# Empty compiler generated dependencies file for hoiho_geo_lib.
# This may be replaced when dependencies are built.
