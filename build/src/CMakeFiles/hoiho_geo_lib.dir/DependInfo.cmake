
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geo/builtin_data.cc" "src/CMakeFiles/hoiho_geo_lib.dir/geo/builtin_data.cc.o" "gcc" "src/CMakeFiles/hoiho_geo_lib.dir/geo/builtin_data.cc.o.d"
  "/root/repo/src/geo/coord.cc" "src/CMakeFiles/hoiho_geo_lib.dir/geo/coord.cc.o" "gcc" "src/CMakeFiles/hoiho_geo_lib.dir/geo/coord.cc.o.d"
  "/root/repo/src/geo/dictionary.cc" "src/CMakeFiles/hoiho_geo_lib.dir/geo/dictionary.cc.o" "gcc" "src/CMakeFiles/hoiho_geo_lib.dir/geo/dictionary.cc.o.d"
  "/root/repo/src/geo/dictionary_io.cc" "src/CMakeFiles/hoiho_geo_lib.dir/geo/dictionary_io.cc.o" "gcc" "src/CMakeFiles/hoiho_geo_lib.dir/geo/dictionary_io.cc.o.d"
  "/root/repo/src/geo/location.cc" "src/CMakeFiles/hoiho_geo_lib.dir/geo/location.cc.o" "gcc" "src/CMakeFiles/hoiho_geo_lib.dir/geo/location.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hoiho_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
