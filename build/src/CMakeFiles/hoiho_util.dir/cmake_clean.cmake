file(REMOVE_RECURSE
  "CMakeFiles/hoiho_util.dir/util/csv.cc.o"
  "CMakeFiles/hoiho_util.dir/util/csv.cc.o.d"
  "CMakeFiles/hoiho_util.dir/util/strings.cc.o"
  "CMakeFiles/hoiho_util.dir/util/strings.cc.o.d"
  "libhoiho_util.a"
  "libhoiho_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hoiho_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
