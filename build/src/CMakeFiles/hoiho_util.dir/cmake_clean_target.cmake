file(REMOVE_RECURSE
  "libhoiho_util.a"
)
