# Empty dependencies file for hoiho_util.
# This may be replaced when dependencies are built.
