file(REMOVE_RECURSE
  "CMakeFiles/hoiho_core.dir/core/apparent.cc.o"
  "CMakeFiles/hoiho_core.dir/core/apparent.cc.o.d"
  "CMakeFiles/hoiho_core.dir/core/eval.cc.o"
  "CMakeFiles/hoiho_core.dir/core/eval.cc.o.d"
  "CMakeFiles/hoiho_core.dir/core/geohint.cc.o"
  "CMakeFiles/hoiho_core.dir/core/geohint.cc.o.d"
  "CMakeFiles/hoiho_core.dir/core/geolocate.cc.o"
  "CMakeFiles/hoiho_core.dir/core/geolocate.cc.o.d"
  "CMakeFiles/hoiho_core.dir/core/hoiho.cc.o"
  "CMakeFiles/hoiho_core.dir/core/hoiho.cc.o.d"
  "CMakeFiles/hoiho_core.dir/core/learn.cc.o"
  "CMakeFiles/hoiho_core.dir/core/learn.cc.o.d"
  "CMakeFiles/hoiho_core.dir/core/nc_io.cc.o"
  "CMakeFiles/hoiho_core.dir/core/nc_io.cc.o.d"
  "CMakeFiles/hoiho_core.dir/core/rank.cc.o"
  "CMakeFiles/hoiho_core.dir/core/rank.cc.o.d"
  "CMakeFiles/hoiho_core.dir/core/regex_gen.cc.o"
  "CMakeFiles/hoiho_core.dir/core/regex_gen.cc.o.d"
  "CMakeFiles/hoiho_core.dir/core/regex_sets.cc.o"
  "CMakeFiles/hoiho_core.dir/core/regex_sets.cc.o.d"
  "libhoiho_core.a"
  "libhoiho_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hoiho_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
