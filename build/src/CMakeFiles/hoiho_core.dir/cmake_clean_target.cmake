file(REMOVE_RECURSE
  "libhoiho_core.a"
)
