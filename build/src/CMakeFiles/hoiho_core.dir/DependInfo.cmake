
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/apparent.cc" "src/CMakeFiles/hoiho_core.dir/core/apparent.cc.o" "gcc" "src/CMakeFiles/hoiho_core.dir/core/apparent.cc.o.d"
  "/root/repo/src/core/eval.cc" "src/CMakeFiles/hoiho_core.dir/core/eval.cc.o" "gcc" "src/CMakeFiles/hoiho_core.dir/core/eval.cc.o.d"
  "/root/repo/src/core/geohint.cc" "src/CMakeFiles/hoiho_core.dir/core/geohint.cc.o" "gcc" "src/CMakeFiles/hoiho_core.dir/core/geohint.cc.o.d"
  "/root/repo/src/core/geolocate.cc" "src/CMakeFiles/hoiho_core.dir/core/geolocate.cc.o" "gcc" "src/CMakeFiles/hoiho_core.dir/core/geolocate.cc.o.d"
  "/root/repo/src/core/hoiho.cc" "src/CMakeFiles/hoiho_core.dir/core/hoiho.cc.o" "gcc" "src/CMakeFiles/hoiho_core.dir/core/hoiho.cc.o.d"
  "/root/repo/src/core/learn.cc" "src/CMakeFiles/hoiho_core.dir/core/learn.cc.o" "gcc" "src/CMakeFiles/hoiho_core.dir/core/learn.cc.o.d"
  "/root/repo/src/core/nc_io.cc" "src/CMakeFiles/hoiho_core.dir/core/nc_io.cc.o" "gcc" "src/CMakeFiles/hoiho_core.dir/core/nc_io.cc.o.d"
  "/root/repo/src/core/rank.cc" "src/CMakeFiles/hoiho_core.dir/core/rank.cc.o" "gcc" "src/CMakeFiles/hoiho_core.dir/core/rank.cc.o.d"
  "/root/repo/src/core/regex_gen.cc" "src/CMakeFiles/hoiho_core.dir/core/regex_gen.cc.o" "gcc" "src/CMakeFiles/hoiho_core.dir/core/regex_gen.cc.o.d"
  "/root/repo/src/core/regex_sets.cc" "src/CMakeFiles/hoiho_core.dir/core/regex_sets.cc.o" "gcc" "src/CMakeFiles/hoiho_core.dir/core/regex_sets.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hoiho_regex.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hoiho_measure.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hoiho_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hoiho_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hoiho_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hoiho_geo_lib.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hoiho_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
