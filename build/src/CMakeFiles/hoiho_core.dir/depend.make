# Empty dependencies file for hoiho_core.
# This may be replaced when dependencies are built.
