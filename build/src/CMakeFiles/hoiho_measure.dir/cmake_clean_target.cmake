file(REMOVE_RECURSE
  "libhoiho_measure.a"
)
