# Empty dependencies file for hoiho_measure.
# This may be replaced when dependencies are built.
