file(REMOVE_RECURSE
  "CMakeFiles/hoiho_measure.dir/measure/consistency.cc.o"
  "CMakeFiles/hoiho_measure.dir/measure/consistency.cc.o.d"
  "CMakeFiles/hoiho_measure.dir/measure/rtt_io.cc.o"
  "CMakeFiles/hoiho_measure.dir/measure/rtt_io.cc.o.d"
  "CMakeFiles/hoiho_measure.dir/measure/rtt_matrix.cc.o"
  "CMakeFiles/hoiho_measure.dir/measure/rtt_matrix.cc.o.d"
  "libhoiho_measure.a"
  "libhoiho_measure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hoiho_measure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
