# Empty compiler generated dependencies file for hoiho_regex.
# This may be replaced when dependencies are built.
