file(REMOVE_RECURSE
  "CMakeFiles/hoiho_regex.dir/regex/ast.cc.o"
  "CMakeFiles/hoiho_regex.dir/regex/ast.cc.o.d"
  "CMakeFiles/hoiho_regex.dir/regex/matcher.cc.o"
  "CMakeFiles/hoiho_regex.dir/regex/matcher.cc.o.d"
  "CMakeFiles/hoiho_regex.dir/regex/parser.cc.o"
  "CMakeFiles/hoiho_regex.dir/regex/parser.cc.o.d"
  "libhoiho_regex.a"
  "libhoiho_regex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hoiho_regex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
