# Empty dependencies file for hoiho_regex.
# This may be replaced when dependencies are built.
