file(REMOVE_RECURSE
  "libhoiho_regex.a"
)
