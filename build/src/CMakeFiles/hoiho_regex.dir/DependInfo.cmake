
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/regex/ast.cc" "src/CMakeFiles/hoiho_regex.dir/regex/ast.cc.o" "gcc" "src/CMakeFiles/hoiho_regex.dir/regex/ast.cc.o.d"
  "/root/repo/src/regex/matcher.cc" "src/CMakeFiles/hoiho_regex.dir/regex/matcher.cc.o" "gcc" "src/CMakeFiles/hoiho_regex.dir/regex/matcher.cc.o.d"
  "/root/repo/src/regex/parser.cc" "src/CMakeFiles/hoiho_regex.dir/regex/parser.cc.o" "gcc" "src/CMakeFiles/hoiho_regex.dir/regex/parser.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hoiho_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
