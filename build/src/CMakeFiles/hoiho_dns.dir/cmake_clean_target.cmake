file(REMOVE_RECURSE
  "libhoiho_dns.a"
)
