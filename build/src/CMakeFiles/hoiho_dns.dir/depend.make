# Empty dependencies file for hoiho_dns.
# This may be replaced when dependencies are built.
