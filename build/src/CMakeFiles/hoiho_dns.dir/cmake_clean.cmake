file(REMOVE_RECURSE
  "CMakeFiles/hoiho_dns.dir/dns/hostname.cc.o"
  "CMakeFiles/hoiho_dns.dir/dns/hostname.cc.o.d"
  "CMakeFiles/hoiho_dns.dir/dns/public_suffix.cc.o"
  "CMakeFiles/hoiho_dns.dir/dns/public_suffix.cc.o.d"
  "libhoiho_dns.a"
  "libhoiho_dns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hoiho_dns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
