// Geolocation comparison on a synthetic world with ground truth: learn
// conventions with Hoiho, then geolocate every geohint-bearing hostname
// with Hoiho, DRoP, HLOC, undns, CBG and Shortest Ping, reporting each
// method's accuracy against the simulator's ground truth.
//
// Run: ./build/examples/geolocate_hostnames [n_operators]

#include <cstdio>
#include <cstdlib>
#include <map>

#include "baselines/cbg.h"
#include "baselines/drop.h"
#include "baselines/hloc.h"
#include "baselines/shortest_ping.h"
#include "baselines/undns.h"
#include "core/geolocate.h"
#include "core/hoiho.h"
#include "sim/probing.h"

using namespace hoiho;

int main(int argc, char** argv) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();

  sim::WorldConfig config;
  config.seed = 20260707;
  config.operators = argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 60;
  config.geohint_scheme_rate = 0.8;
  const sim::World world = sim::generate_world(dict, config);
  const measure::Measurements pings = sim::probe_pings(world, {});
  const measure::Measurements traces = sim::probe_traceroutes(world, {});

  std::printf("world: %zu operators, %zu routers, %zu hostnames\n\n", world.operators.size(),
              world.topology.size(), world.truths.size());

  // Learn conventions with the full pipeline.
  const core::Hoiho hoiho(dict);
  const core::HoihoResult result = hoiho.run(world.topology, pings);
  core::Geolocator geolocator(dict);
  for (const core::SuffixResult& sr : result.suffixes)
    if (sr.usable()) geolocator.add(sr.nc);
  std::printf("learned %zu usable conventions\n", geolocator.convention_count());

  // Prepare the baselines.
  baselines::Drop drop(dict);
  drop.train(world.topology, traces);
  const baselines::Hloc hloc(dict);
  const baselines::Undns undns = baselines::Undns::from_world(world);

  // Score every hostname that truly carries a geohint. A hostname-based
  // answer is correct within 40 km of the router's true location;
  // delay-based answers (CBG, shortest ping) get the same bar.
  struct Tally {
    std::size_t answered = 0, correct = 0;
  };
  std::map<std::string, Tally> tallies;
  std::size_t total = 0;
  const auto judge = [&](const char* method, const geo::Coordinate& answer,
                         const geo::Coordinate& truth) {
    Tally& t = tallies[method];
    ++t.answered;
    if (geo::distance_km(answer, truth) <= 40.0) ++t.correct;
  };

  for (const sim::HostnameTruth& truth : world.truths) {
    if (!truth.has_geohint) continue;
    ++total;
    const geo::Coordinate& at = dict.location(world.topology.router(truth.router).true_location).coord;
    const auto host = dns::parse_hostname(truth.hostname);
    if (!host) continue;

    if (const auto loc = geolocator.locate(truth.hostname)) judge("hoiho", loc->coord, at);
    if (const auto loc = drop.locate(*host)) judge("drop", dict.location(*loc).coord, at);
    if (const auto loc = hloc.locate(*host, truth.router, pings))
      judge("hloc", dict.location(*loc).coord, at);
    if (const auto loc = undns.locate(*host)) judge("undns", dict.location(*loc).coord, at);
    if (const auto sp = baselines::shortest_ping(pings, truth.router))
      judge("shortest-ping", sp->coord, at);
  }

  // CBG once per responsive router (it is delay-only; hostname-independent).
  std::size_t cbg_routers = 0, cbg_correct = 0;
  double cbg_error_sum = 0;
  for (const topo::Router& r : world.topology.routers()) {
    if (!pings.pings.responsive(r.id)) continue;
    const auto cbg = baselines::cbg_locate(pings, r.id);
    if (!cbg) continue;
    ++cbg_routers;
    cbg_error_sum += cbg->error_km;
    if (geo::distance_km(cbg->estimate, dict.location(r.true_location).coord) <= 40.0)
      ++cbg_correct;
  }

  std::printf("\n%zu hostnames with geohints\n\n", total);
  std::printf("%-14s %10s %10s %10s\n", "method", "answered", "correct", "correct%");
  for (const char* m : {"hoiho", "hloc", "drop", "undns", "shortest-ping"}) {
    const Tally& t = tallies[m];
    std::printf("%-14s %10zu %10zu %9.1f%%\n", m, t.answered, t.correct,
                t.answered == 0 ? 0.0 : 100.0 * static_cast<double>(t.correct) /
                                            static_cast<double>(t.answered));
  }
  std::printf("\nCBG (per router): %zu multilaterated, %zu within 40 km, mean error radius %.0f km\n",
              cbg_routers, cbg_correct,
              cbg_routers == 0 ? 0.0 : cbg_error_sum / static_cast<double>(cbg_routers));
  return 0;
}
