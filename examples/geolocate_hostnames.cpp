// Geolocation comparison on a synthetic world with ground truth: obtain
// naming conventions — either loaded from a saved model file or learned
// with Hoiho and round-tripped through nc_io — then geolocate every
// geohint-bearing hostname with Hoiho, DRoP, HLOC, undns, CBG and
// Shortest Ping, reporting each method's accuracy against the simulator's
// ground truth.
//
// Run: ./build/examples/geolocate_hostnames [n_operators] [--model FILE]
//
// With --model, conventions come from FILE (as written by save_conventions
// or `hoihod --write-demo-model`) instead of re-running the learning
// pipeline. Without it, the example learns, saves, and reloads through a
// temporary file so the serialized path is exercised either way.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "baselines/cbg.h"
#include "baselines/drop.h"
#include "baselines/hloc.h"
#include "baselines/shortest_ping.h"
#include "baselines/undns.h"
#include "core/geolocate.h"
#include "core/hoiho.h"
#include "core/nc_io.h"
#include "sim/probing.h"

using namespace hoiho;

namespace {

// Loads conventions from `path`, exiting with a message on failure.
std::vector<core::StoredConvention> load_model(const std::string& path,
                                               const geo::GeoDictionary& dict) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open model file %s\n", path.c_str());
    std::exit(1);
  }
  std::string error;
  std::vector<std::string> warnings;
  auto loaded = core::load_conventions(in, dict, &error, &warnings);
  if (!loaded) {
    std::fprintf(stderr, "bad model file %s: %s\n", path.c_str(), error.c_str());
    std::exit(1);
  }
  for (const std::string& w : warnings)
    std::fprintf(stderr, "warning: %s\n", w.c_str());
  std::printf("loaded %zu conventions from %s\n", loaded->size(), path.c_str());
  return *loaded;
}

}  // namespace

int main(int argc, char** argv) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();

  std::string model_path;
  std::size_t operators = 60;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--model" && i + 1 < argc) {
      model_path = argv[++i];
    } else {
      operators = static_cast<std::size_t>(std::atoi(argv[i]));
    }
  }

  sim::WorldConfig config;
  config.seed = 20260707;
  config.operators = operators;
  config.geohint_scheme_rate = 0.8;
  const sim::World world = sim::generate_world(dict, config);
  const measure::Measurements pings = sim::probe_pings(world, {});
  const measure::Measurements traces = sim::probe_traceroutes(world, {});

  std::printf("world: %zu operators, %zu routers, %zu hostnames\n\n", world.operators.size(),
              world.topology.size(), world.truths.size());

  // Obtain conventions: from the given model file, or by learning and then
  // round-tripping the result through the nc_io text format in memory.
  std::vector<core::StoredConvention> stored;
  if (!model_path.empty()) {
    stored = load_model(model_path, dict);
  } else {
    const core::Hoiho hoiho(dict);
    const core::HoihoResult result = hoiho.run(world.topology, pings);
    std::vector<core::StoredConvention> learned;
    for (const core::SuffixResult& sr : result.suffixes)
      if (sr.usable()) learned.push_back({sr.nc, sr.cls});
    std::stringstream io;
    core::save_conventions(io, learned, dict);
    std::string error;
    auto reloaded = core::load_conventions(io, dict, &error);
    if (!reloaded) {
      std::fprintf(stderr, "learned model failed to round-trip: %s\n", error.c_str());
      return 1;
    }
    stored = *reloaded;
    std::printf("learned %zu usable conventions (round-tripped through nc_io)\n",
                stored.size());
  }

  core::Geolocator geolocator(dict);
  for (const core::StoredConvention& sc : stored)
    if (core::is_usable(sc.cls)) geolocator.add(sc.nc);

  // Prepare the baselines.
  baselines::Drop drop(dict);
  drop.train(world.topology, traces);
  const baselines::Hloc hloc(dict);
  const baselines::Undns undns = baselines::Undns::from_world(world);

  // Score every hostname that truly carries a geohint. A hostname-based
  // answer is correct within 40 km of the router's true location;
  // delay-based answers (CBG, shortest ping) get the same bar.
  struct Tally {
    std::size_t answered = 0, correct = 0;
  };
  std::map<std::string, Tally> tallies;
  std::size_t total = 0;
  const auto judge = [&](const char* method, const geo::Coordinate& answer,
                         const geo::Coordinate& truth) {
    Tally& t = tallies[method];
    ++t.answered;
    if (geo::distance_km(answer, truth) <= 40.0) ++t.correct;
  };

  for (const sim::HostnameTruth& truth : world.truths) {
    if (!truth.has_geohint) continue;
    ++total;
    const geo::Coordinate& at = dict.location(world.topology.router(truth.router).true_location).coord;
    std::string canonical;
    const auto host = dns::parse_hostname(truth.hostname, canonical);
    if (!host) continue;

    if (const auto loc = geolocator.locate(truth.hostname)) judge("hoiho", loc->coord, at);
    if (const auto loc = drop.locate(*host)) judge("drop", dict.location(*loc).coord, at);
    if (const auto loc = hloc.locate(*host, truth.router, pings))
      judge("hloc", dict.location(*loc).coord, at);
    if (const auto loc = undns.locate(*host)) judge("undns", dict.location(*loc).coord, at);
    if (const auto sp = baselines::shortest_ping(pings, truth.router))
      judge("shortest-ping", sp->coord, at);
  }

  // CBG once per responsive router (it is delay-only; hostname-independent).
  std::size_t cbg_routers = 0, cbg_correct = 0;
  double cbg_error_sum = 0;
  for (const topo::Router& r : world.topology.routers()) {
    if (!pings.pings.responsive(r.id)) continue;
    const auto cbg = baselines::cbg_locate(pings, r.id);
    if (!cbg) continue;
    ++cbg_routers;
    cbg_error_sum += cbg->error_km;
    if (geo::distance_km(cbg->estimate, dict.location(r.true_location).coord) <= 40.0)
      ++cbg_correct;
  }

  std::printf("\n%zu hostnames with geohints\n\n", total);
  std::printf("%-14s %10s %10s %10s\n", "method", "answered", "correct", "correct%");
  for (const char* m : {"hoiho", "hloc", "drop", "undns", "shortest-ping"}) {
    const Tally& t = tallies[m];
    std::printf("%-14s %10zu %10zu %9.1f%%\n", m, t.answered, t.correct,
                t.answered == 0 ? 0.0 : 100.0 * static_cast<double>(t.correct) /
                                            static_cast<double>(t.answered));
  }
  std::printf("\nCBG (per router): %zu multilaterated, %zu within 40 km, mean error radius %.0f km\n",
              cbg_routers, cbg_correct,
              cbg_routers == 0 ? 0.0 : cbg_error_sum / static_cast<double>(cbg_routers));
  return 0;
}
