// Audit a claimed IP -> location feed against hostname + RTT evidence
// (DESIGN.md §13; the headline use case of "IP Geolocation through Reverse
// DNS", see PAPERS.md).
//
// Two modes:
//
//   File mode — audit a real feed against a saved model and RTT campaign:
//     ./build/examples/hoiho_audit --model m.txt --subjects s.csv
//         --rtt rtt.txt --feed feed.csv [--population pop.csv]
//         [--agree-km 100] [--show 10]
//   The model comes from `hoihod --write-demo-model` or save_conventions;
//   subjects are `subject,router[,hostname]` rows; the RTT file is the
//   rtt_io format; the feed is `subject,lat,lon` ('#' comments allowed
//   everywhere; corrupt rows are skipped and counted).
//
//   Demo mode (no flags) — build a synthetic world with ground truth,
//   learn conventions, synthesize a feed where every tenth row claims a
//   far-away city, and audit it. Shows the full loop without any files.
//
// Exit code: 0 if the audit ran (regardless of outcomes), 1 on bad input.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/hoiho.h"
#include "core/nc_io.h"
#include "fuse/audit.h"
#include "measure/rtt_io.h"
#include "sim/probing.h"
#include "util/rng.h"

using namespace hoiho;

namespace {

// Prints a lenient-load report if anything was skipped.
void report_skips(const char* what, const io::LoadReport& rep) {
  if (rep.skipped_total() == 0) return;
  std::fprintf(stderr, "%s: %s\n", what, rep.summary().c_str());
  for (const std::string& d : rep.diagnostics)
    std::fprintf(stderr, "  %s\n", d.c_str());
}

void print_rows(const std::vector<fuse::AuditRow>& rows, std::size_t show) {
  std::printf("\n%-28s %-8s %9s %7s  %s\n", "subject", "outcome", "nearest", "score",
              "evidence");
  for (std::size_t i = 0; i < rows.size() && i < show; ++i) {
    const fuse::AuditRow& r = rows[i];
    std::printf("%-28s %-8s %8.1fk %7.3f  %s\n", r.subject.c_str(),
                std::string(fuse::to_string(r.outcome)).c_str(), r.nearest_km, r.top_score,
                r.evidence.c_str());
  }
  if (rows.size() > show) std::printf("... (%zu more rows)\n", rows.size() - show);
}

void print_summary(const fuse::AuditSummary& s) {
  std::printf("\naudited %zu rows: %zu agree, %zu refute, %zu unknown\n", s.rows, s.agree,
              s.refute, s.unknown);
}

int run_demo(std::size_t show) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  std::printf("demo mode: synthetic world, synthetic feed (10%% injected-wrong rows)\n");

  sim::WorldConfig wc;
  wc.seed = 20260808;
  wc.operators = 40;
  wc.geohint_scheme_rate = 0.8;
  const sim::World world = sim::generate_world(dict, wc);
  measure::Measurements pings = sim::probe_pings(world, {});

  const core::Hoiho hoiho(dict);
  const core::HoihoResult result = hoiho.run(world.topology, pings);
  core::Geolocator geolocator(dict);
  for (const core::SuffixResult& sr : result.suffixes)
    if (sr.usable()) geolocator.add(sr.nc, sr.cls);

  const auto ctx = fuse::FuseContext::build(world.topology, std::move(pings), dict);

  // Feed: true coordinates, except every tenth row claims a city >= 1000 km
  // away — the rows the auditor should refute.
  util::Rng rng(7);
  std::vector<fuse::FeedRow> feed;
  for (const sim::HostnameTruth& truth : world.truths) {
    if (!truth.has_geohint || feed.size() >= 500) continue;
    const geo::Coordinate& at =
        dict.location(world.topology.router(truth.router).true_location).coord;
    fuse::FeedRow row;
    row.subject = truth.hostname;
    row.claimed = at;
    if (feed.size() % 10 == 9) {
      for (int attempt = 0; attempt < 64; ++attempt) {
        const auto pick = static_cast<geo::LocationId>(rng.next_below(dict.size()));
        if (geo::distance_km(dict.location(pick).coord, at) >= 1000.0) {
          row.claimed = dict.location(pick).coord;
          break;
        }
      }
    }
    feed.push_back(std::move(row));
  }

  const fuse::Auditor auditor(geolocator, ctx.get());
  std::vector<fuse::AuditRow> rows;
  const fuse::AuditSummary summary = auditor.audit_feed(feed, &rows);
  print_rows(rows, show);
  print_summary(summary);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string model_path, subjects_path, rtt_path, feed_path, population_path;
  double agree_km = 100.0;
  std::size_t show = 10;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--model" && has_value) model_path = argv[++i];
    else if (arg == "--subjects" && has_value) subjects_path = argv[++i];
    else if (arg == "--rtt" && has_value) rtt_path = argv[++i];
    else if (arg == "--feed" && has_value) feed_path = argv[++i];
    else if (arg == "--population" && has_value) population_path = argv[++i];
    else if (arg == "--agree-km" && has_value) agree_km = std::atof(argv[++i]);
    else if (arg == "--show" && has_value) show = static_cast<std::size_t>(std::atoi(argv[++i]));
    else {
      std::fprintf(stderr,
                   "usage: hoiho_audit [--model FILE --subjects FILE --rtt FILE --feed FILE]\n"
                   "                   [--population FILE] [--agree-km KM] [--show N]\n"
                   "with no flags, runs a self-contained synthetic demo\n");
      return 1;
    }
  }
  if (model_path.empty()) return run_demo(show);
  if (subjects_path.empty() || feed_path.empty()) {
    std::fprintf(stderr, "file mode needs --model, --subjects and --feed\n");
    return 1;
  }

  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  const io::LoadOptions lenient{.lenient = true};

  std::ifstream min(model_path);
  std::string error;
  const auto stored =
      min ? core::load_conventions(min, dict, &error)
          : (error = "cannot open file", std::nullopt);
  if (!stored) {
    std::fprintf(stderr, "cannot load model %s: %s\n", model_path.c_str(), error.c_str());
    return 1;
  }
  core::Geolocator geolocator(dict);
  for (const core::StoredConvention& sc : *stored)
    if (core::is_usable(sc.cls)) geolocator.add(sc.nc, sc.cls);
  std::printf("model: %zu conventions from %s\n", stored->size(), model_path.c_str());

  std::ifstream sin(subjects_path);
  io::LoadReport srep;
  const auto subjects = sin ? fuse::load_subjects(sin, lenient, &srep) : std::nullopt;
  if (!subjects) {
    std::fprintf(stderr, "cannot load subjects %s: %s\n", subjects_path.c_str(),
                 srep.error.c_str());
    return 1;
  }
  report_skips("subjects", srep);

  topo::RouterId router_count = 0;
  for (const fuse::SubjectRow& sr : *subjects)
    if (sr.router != topo::kInvalidRouter && sr.router + 1 > router_count)
      router_count = sr.router + 1;

  measure::Measurements meas({}, router_count);
  if (!rtt_path.empty()) {
    std::ifstream rin(rtt_path);
    io::LoadReport rrep;
    auto loaded = rin ? measure::load_measurements(rin, router_count, lenient, &rrep)
                      : std::nullopt;
    if (!loaded) {
      std::fprintf(stderr, "cannot load rtt %s: %s\n", rtt_path.c_str(), rrep.error.c_str());
      return 1;
    }
    report_skips("rtt", rrep);
    meas = std::move(*loaded);
  }

  fuse::PopulationPrior prior;
  if (!population_path.empty()) {
    std::ifstream pin(population_path);
    io::LoadReport prep;
    auto loaded = pin ? fuse::PopulationPrior::load(pin, dict, lenient, &prep) : std::nullopt;
    if (!loaded) {
      std::fprintf(stderr, "cannot load population %s: %s\n", population_path.c_str(),
                   prep.error.c_str());
      return 1;
    }
    report_skips("population", prep);
    prior = std::move(*loaded);
  }

  std::ifstream fin(feed_path);
  io::LoadReport frep;
  const auto feed = fin ? fuse::load_feed(fin, lenient, &frep) : std::nullopt;
  if (!feed) {
    std::fprintf(stderr, "cannot load feed %s: %s\n", feed_path.c_str(), frep.error.c_str());
    return 1;
  }
  report_skips("feed", frep);
  std::printf("subjects: %zu, rtt samples for %zu routers, feed rows: %zu\n",
              subjects->size(), static_cast<std::size_t>(router_count), feed->size());

  const auto ctx = fuse::FuseContext::build(*subjects, std::move(meas), dict, std::move(prior));
  fuse::AuditConfig config;
  config.agree_km = agree_km;
  const fuse::Auditor auditor(geolocator, ctx.get(), config);
  std::vector<fuse::AuditRow> rows;
  const fuse::AuditSummary summary = auditor.audit_feed(*feed, &rows);
  print_rows(rows, show);
  print_summary(summary);
  return 0;
}
