// Model format converter: text ↔ ncb, either direction.
//
//   ./build/examples/hoiho_convert IN OUT
//
// The input format is sniffed from the file's magic (same detection the
// serving ModelStore uses), so IN can be a text model written by
// save_conventions or a binary .ncb image; OUT's extension picks the output
// format (".ncb" → binary, anything else → text). Converting a file to its
// own format is a valid way to re-canonicalize it.
//
// Exit status 0 only if the input loaded cleanly AND the written output
// round-trips: the tool reloads what it wrote and compares convention
// counts, so a conversion that drops data fails loudly.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/nc_io.h"
#include "core/ncb.h"
#include "geo/dictionary.h"

using namespace hoiho;

namespace {

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return false;
  std::ostringstream os;
  os << in.rdbuf();
  out = os.str();
  return true;
}

// Loads a model of either format into StoredConvention records.
bool load_any(const std::string& path, const geo::GeoDictionary& dict,
              std::vector<core::StoredConvention>& out, std::string& format) {
  std::string bytes;
  if (!read_file(path, bytes)) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return false;
  }
  std::string error;
  std::vector<std::string> warnings;
  if (core::detect_model_format(bytes) == core::ModelFormat::kNcb) {
    format = "ncb";
    const auto model = core::NcbModel::from_bytes(bytes, &error);
    if (model == nullptr) {
      std::fprintf(stderr, "bad ncb model %s: %s\n", path.c_str(), error.c_str());
      return false;
    }
    const auto stored = model->to_stored(dict, &error, &warnings);
    if (!stored) {
      std::fprintf(stderr, "ncb model %s did not back-convert: %s\n", path.c_str(),
                   error.c_str());
      return false;
    }
    out = *stored;
  } else {
    format = "text";
    std::istringstream in(bytes);
    const auto stored = core::load_conventions(in, dict, &error, &warnings);
    if (!stored) {
      std::fprintf(stderr, "bad text model %s: %s\n", path.c_str(), error.c_str());
      return false;
    }
    out = *stored;
  }
  for (const std::string& w : warnings)
    std::fprintf(stderr, "warning: %s\n", w.c_str());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 3) {
    std::fprintf(stderr, "usage: %s IN OUT   (OUT ending in .ncb → binary, else text)\n",
                 argv[0]);
    return 2;
  }
  const std::string in_path = argv[1];
  const std::string out_path = argv[2];
  const geo::GeoDictionary& dict = geo::builtin_dictionary();

  std::vector<core::StoredConvention> stored;
  std::string in_format;
  if (!load_any(in_path, dict, stored, in_format)) return 1;

  std::string error;
  if (!core::save_model_to_file(out_path, stored, dict, &error)) {
    std::fprintf(stderr, "cannot write %s: %s\n", out_path.c_str(), error.c_str());
    return 1;
  }

  // Round-trip check: reload what we wrote; a conversion that loses
  // conventions is a failure, not a warning.
  std::vector<core::StoredConvention> reloaded;
  std::string out_format;
  if (!load_any(out_path, dict, reloaded, out_format)) return 1;
  if (reloaded.size() != stored.size()) {
    std::fprintf(stderr, "round-trip lost conventions: wrote %zu, reloaded %zu\n",
                 stored.size(), reloaded.size());
    return 1;
  }

  std::string out_bytes;
  read_file(out_path, out_bytes);
  std::printf("%s (%s) -> %s (%s): %zu conventions, %zu bytes\n", in_path.c_str(),
              in_format.c_str(), out_path.c_str(), out_format.c_str(), stored.size(),
              out_bytes.size());
  return 0;
}
