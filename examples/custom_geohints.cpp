// Custom-geohint walkthrough: reproduces both halves of the paper's
// figure 8 interactively.
//
// (a) he.net repurposes "ash" — an IATA code whose dictionary meaning is
//     Nashua, NH — for Ashburn, VA. The learner scores candidate
//     interpretations by RTT feasibility, then ranks by facility presence
//     and population.
// (b) ntt.net makes up its own CLLI code "mlanit" for Milan, IT — not in
//     any dictionary at all — and the country code in the hostname lets a
//     single congruent router justify learning it.
//
// Run: ./build/examples/custom_geohints

#include <cstdio>
#include <deque>

#include "core/apparent.h"
#include "core/eval.h"
#include "core/learn.h"
#include "geo/dictionary.h"
#include "regex/parser.h"

using namespace hoiho;

namespace {

struct Bench {
  measure::Measurements meas{{}, 16};
  util::Arena arena;  // backs hostnames (dns::Hostname is a view)
  std::deque<dns::Hostname> hostnames;
  std::vector<core::TaggedHostname> tagged;
  topo::RouterId next = 0;

  explicit Bench(std::vector<measure::VantagePoint> vps) {
    meas.vps = std::move(vps);
    meas.pings = measure::RttMatrix(16, meas.vps.size());
  }

  void add(std::string_view raw, measure::VpId vp, double rtt) {
    const topo::RouterId r = next++;
    for (measure::VpId v = 0; v < meas.vps.size(); ++v)
      meas.pings.record(r, v, v == vp ? rtt : 250.0);
    hostnames.push_back(*dns::parse_hostname(raw, arena));
    const core::ApparentTagger tagger(geo::builtin_dictionary(), meas, {});
    tagged.push_back(tagger.tag(topo::HostnameRef{r, &hostnames.back()}));
  }
};

void report(const geo::GeoDictionary& dict, const core::NamingConvention& nc,
            const std::vector<core::LearnedHint>& learned, const core::NcEvaluation& before,
            const core::NcEvaluation& after) {
  for (const core::LearnedHint& lh : learned) {
    const geo::Location& loc = dict.location(lh.location);
    std::printf("  learned \"%s\" -> %s, %s%s%s  (tp=%zu fp=%zu, dictionary meaning had %zu tp)\n",
                lh.code.c_str(), loc.city.c_str(),
                loc.state.empty() ? "" : (loc.state + ", ").c_str(), loc.country.c_str(),
                loc.has_facility ? "  [facility]" : "", lh.tp, lh.fp, lh.existing_tp);
  }
  std::printf("  before learning: TP=%zu FP=%zu UNK=%zu   after: TP=%zu FP=%zu UNK=%zu\n",
              before.counts.tp, before.counts.fp, before.counts.unk, after.counts.tp,
              after.counts.fp, after.counts.unk);
  (void)nc;
}

}  // namespace

int main() {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();

  // --- Figure 8a: he.net's "ash" ---------------------------------------------
  std::printf("Figure 8a: learning that \"ash\" means Ashburn, VA for he.net\n");
  Bench he({
      measure::VantagePoint{"cgs", "us", {38.99, -76.94}},  // College Park, MD
      measure::VantagePoint{"lon", "uk", {51.51, -0.13}},
      measure::VantagePoint{"tyo", "jp", {35.68, 139.69}},
      measure::VantagePoint{"sea", "us", {47.61, -122.33}},
      measure::VantagePoint{"zrh", "ch", {47.37, 8.54}},
  });
  // Clean geohints to seed confidence in the convention...
  he.add("100ge1-1.core1.lhr1.he.net", 1, 2.0);
  he.add("100ge3-2.core1.nrt2.he.net", 2, 3.0);
  he.add("100ge5-1.core2.sea1.he.net", 3, 2.0);
  he.add("100ge2-2.core1.zrh3.he.net", 4, 2.0);
  // ...and the figure's four Ashburn routers named "ash".
  he.add("gcr-company.gigabitethernet4-1.core1.ash1.he.net", 0, 9.0);
  he.add("100ge1-2.core1.ash1.he.net", 0, 3.0);
  he.add("100ge10-1.core2.ash1.he.net", 0, 3.0);
  he.add("46-labs-llc.ve401.core2.ash1.he.net", 0, 5.0);

  core::NamingConvention he_nc;
  he_nc.suffix = "he.net";
  core::GeoRegex he_rx;
  he_rx.regex = *rx::parse("^.+\\.([a-z]{3})\\d+\\.he\\.net$");
  he_rx.plan.roles = {core::Role::kIata};
  he_nc.regexes.push_back(std::move(he_rx));

  const core::Evaluator he_eval(dict, he.meas);
  const core::NcEvaluation he_before = he_eval.evaluate(he_nc, he.tagged);
  const core::GeohintLearner he_learner(he_eval);
  const auto he_learned = he_learner.learn(he_nc, he.tagged, he_before);
  const core::NcEvaluation he_after = he_eval.evaluate(he_nc, he.tagged);
  report(dict, he_nc, he_learned, he_before, he_after);

  // Show the candidate ranking logic explicitly (the figure's table).
  std::printf("  candidate interpretations of \"ash\":\n");
  for (const geo::LocationId id : dict.abbreviation_candidates("ash")) {
    const geo::Location& loc = dict.location(id);
    std::printf("    %-12s %-3s %-3s facility=%d population=%llu\n", loc.city.c_str(),
                loc.state.c_str(), loc.country.c_str(), loc.has_facility,
                static_cast<unsigned long long>(loc.population));
  }

  // --- Figure 8b: ntt.net's "mlanit" ------------------------------------------
  std::printf("\nFigure 8b: learning NTT's home-made CLLI code \"mlanit\"\n");
  Bench ntt({
      measure::VantagePoint{"zrh", "ch", {47.37, 8.54}},
      measure::VantagePoint{"lon", "uk", {51.51, -0.13}},
      measure::VantagePoint{"tyo", "jp", {35.68, 139.69}},
      measure::VantagePoint{"sea", "us", {47.61, -122.33}},
  });
  ntt.add("ae-1.r20.londen01.uk.bb.gin.ntt.net", 1, 2.0);
  ntt.add("ae-2.r21.tokyjp05.jp.bb.gin.ntt.net", 2, 2.0);
  ntt.add("ae-9.r22.snjsca04.us.bb.gin.ntt.net", 3, 12.0);
  ntt.add("ae-7.r02.mlanit01.it.bb.gin.ntt.net", 0, 6.0);
  ntt.add("ae-3.r21.mlanit02.it.bb.gin.ntt.net", 0, 6.0);

  core::NamingConvention ntt_nc;
  ntt_nc.suffix = "ntt.net";
  core::GeoRegex ntt_rx;
  ntt_rx.regex = *rx::parse("^.+\\.([a-z]{6})\\d+\\.([a-z]{2})\\.bb\\.gin\\.ntt\\.net$");
  ntt_rx.plan.roles = {core::Role::kClli, core::Role::kCountryCode};
  ntt_nc.regexes.push_back(std::move(ntt_rx));

  const core::Evaluator ntt_eval(dict, ntt.meas);
  const core::NcEvaluation ntt_before = ntt_eval.evaluate(ntt_nc, ntt.tagged);
  const core::GeohintLearner ntt_learner(ntt_eval);
  const auto ntt_learned = ntt_learner.learn(ntt_nc, ntt.tagged, ntt_before);
  const core::NcEvaluation ntt_after = ntt_eval.evaluate(ntt_nc, ntt.tagged);
  report(dict, ntt_nc, ntt_learned, ntt_before, ntt_after);

  return 0;
}
