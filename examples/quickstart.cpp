// Quickstart: learn a naming convention for one suffix from a handful of
// hostnames plus RTT measurements, then geolocate hostnames with it.
//
// This mirrors the paper's he.net example (fig. 8a): the operator labels
// Ashburn, VA routers with "ash" — which the IATA dictionary says is Nashua,
// NH — and the learner both infers the regex and learns the operator's
// meaning of "ash" from speed-of-light constraints.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart

#include <cstdio>

#include "core/geolocate.h"
#include "core/hoiho.h"
#include "geo/dictionary.h"
#include "sim/internet.h"
#include "sim/probing.h"

using namespace hoiho;

namespace {

geo::LocationId city(const geo::GeoDictionary& dict, const char* name, const char* country) {
  for (geo::LocationId id : dict.lookup(geo::HintType::kCityName, geo::squash_place_name(name)))
    if (geo::same_country(dict.location(id).country, country)) return id;
  return geo::kInvalidLocation;
}

}  // namespace

int main() {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();

  // 1. Build a tiny topology: one operator ("example.net") with routers in
  //    five cities, labelled with IATA-style codes — except Ashburn, which
  //    has no airport code, so the operator made one up: "ash".
  sim::World world;
  world.dict = &dict;
  world.vps = sim::make_vps(dict, 80);

  sim::NamingScheme scheme;
  // A fixed, readable template: role + num "." geo + num ".example.net".
  scheme.hint_role = core::Role::kIata;
  scheme.labels = {{sim::Part::role(), sim::Part::num()},
                   {sim::Part::geo(), sim::Part::num()}};
  const geo::LocationId ashburn = city(dict, "Ashburn", "us");
  scheme.custom_codes[ashburn] = "ash";

  util::Rng rng(7);
  std::size_t addr = 0;
  for (const geo::LocationId loc : {ashburn, city(dict, "London", "gb"),
                                    city(dict, "Tokyo", "jp"), city(dict, "Seattle", "us"),
                                    city(dict, "Frankfurt", "de")}) {
    for (int i = 0; i < 6; ++i) {
      const topo::RouterId rid = world.topology.add_router(loc);
      const auto rendered = sim::render_hostname(scheme, dict, loc, "example.net", rng);
      world.topology.add_interface(rid, "10.0.0." + std::to_string(++addr),
                                   rendered->hostname);
    }
  }

  // 2. Probe it: every VP pings every router (simulated speed-of-light
  //    physics plus path inflation).
  const measure::Measurements meas = sim::probe_pings(world, sim::PingConfig{});

  // 3. Learn: run the five-stage method.
  core::Hoiho hoiho(dict);
  const core::HoihoResult result = hoiho.run(world.topology, meas);

  for (const core::SuffixResult& sr : result.suffixes) {
    std::printf("suffix %s: %zu hostnames, %zu with apparent geohints\n", sr.suffix.c_str(),
                sr.hostname_count, sr.tagged_count);
    if (!sr.has_nc()) {
      std::printf("  no naming convention learned\n");
      continue;
    }
    std::printf("  classification: %s  (TP=%zu FP=%zu FN=%zu UNK=%zu, PPV=%.1f%%)\n",
                std::string(to_string(sr.cls)).c_str(), sr.eval.counts.tp, sr.eval.counts.fp,
                sr.eval.counts.fn, sr.eval.counts.unk, 100.0 * sr.eval.counts.ppv());
    for (const core::GeoRegex& gr : sr.nc.regexes)
      std::printf("  regex [%s]: %s\n", gr.plan.to_string().c_str(), gr.to_string().c_str());
    for (const core::LearnedHint& lh : sr.nc.learned.empty()
             ? std::vector<core::LearnedHint>{}
             : sr.learned) {
      const geo::Location& loc = dict.location(lh.location);
      std::printf("  learned geohint: \"%s\" -> %s, %s (tp=%zu fp=%zu)\n", lh.code.c_str(),
                  loc.city.c_str(), loc.country.c_str(), lh.tp, lh.fp);
    }
  }

  // 4. Apply: geolocate hostnames with the learned conventions — no
  //    measurements needed at this point.
  core::Geolocator geolocator(dict);
  for (const core::SuffixResult& sr : result.suffixes)
    if (sr.usable()) geolocator.add(sr.nc);

  for (const char* hostname : {"core1.ash2.example.net", "br7.lhr12.example.net",
                               "gw3.nrt1.example.net"}) {
    const auto loc = geolocator.locate(hostname);
    if (loc) {
      const geo::Location& l = dict.location(loc->location);
      std::printf("%-28s -> %s, %s%s\n", hostname, l.city.c_str(), l.country.c_str(),
                  loc->via_learned ? "  (learned geohint)" : "");
    } else {
      std::printf("%-28s -> (no geolocation)\n", hostname);
    }
  }
  return 0;
}
