// End-to-end ITDK-style pipeline with file I/O: generate a world, write it
// out in the CAIDA-style nodes/names formats, read it back (as a consumer
// of real ITDK data would), run the learner, and dump the per-suffix
// conventions — the shape of the paper's published regex website.
//
// Run: ./build/examples/itdk_pipeline [output_dir]

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "core/hoiho.h"
#include "core/geolocate.h"
#include "core/nc_io.h"
#include "sim/scenario.h"
#include "topo/itdk_io.h"
#include "util/strings.h"

using namespace hoiho;

int main(int argc, char** argv) {
  const std::filesystem::path dir = argc > 1 ? argv[1] : "itdk_out";
  std::filesystem::create_directories(dir);

  // 1. Generate a small IPv4-style world and probe it.
  sim::WorldConfig config;
  config.seed = 777;
  config.operators = 40;
  config.geohint_scheme_rate = 0.7;
  const sim::World world = sim::generate_world(geo::builtin_dictionary(), config);
  const measure::Measurements pings = sim::probe_pings(world, {});

  // 2. Write the ITDK-style files.
  {
    std::ofstream nodes(dir / "midar-iff.nodes");
    topo::write_nodes(nodes, world.topology);
    std::ofstream names(dir / "itdk-run.names");
    topo::write_names(names, world.topology);
  }
  std::printf("wrote %s/{midar-iff.nodes, itdk-run.names}\n", dir.c_str());

  // 3. Read them back, as a downstream consumer would.
  std::ifstream nodes(dir / "midar-iff.nodes");
  std::ifstream names(dir / "itdk-run.names");
  std::string error;
  const auto loaded = topo::read_itdk(nodes, &names, &error);
  if (!loaded) {
    std::fprintf(stderr, "failed to read ITDK files: %s\n", error.c_str());
    return 1;
  }
  std::printf("read back %zu routers (%zu with hostnames)\n", loaded->size(),
              loaded->count_with_hostname());

  // 4. Run the learner on the re-loaded topology. (Note: RTTs index routers
  //    by id; the round trip preserves router order.)
  const core::Hoiho hoiho(geo::builtin_dictionary());
  const core::HoihoResult result = hoiho.run(*loaded, pings);

  // 5. Publish the learned conventions in the machine-readable format
  //    (core/nc_io.h) — the shape of the paper's regex website — and read
  //    them back into a Geolocator to prove the artifact is self-contained.
  std::vector<core::StoredConvention> stored;
  for (const core::SuffixResult& sr : result.suffixes) {
    if (!sr.usable()) continue;
    stored.push_back(core::StoredConvention{sr.nc, sr.cls});
  }
  const std::filesystem::path out = dir / "conventions.txt";
  {
    std::ofstream conv(out);
    core::save_conventions(conv, stored, geo::builtin_dictionary());
  }
  std::printf("wrote %zu usable conventions to %s\n", stored.size(), out.c_str());

  std::ifstream conv_in(out);
  const auto reloaded = core::load_conventions(conv_in, geo::builtin_dictionary());
  if (!reloaded) {
    std::fprintf(stderr, "failed to reload conventions\n");
    return 1;
  }
  core::Geolocator geolocator(geo::builtin_dictionary());
  for (const core::StoredConvention& sc : *reloaded) geolocator.add(sc.nc);
  std::size_t located = 0;
  for (const sim::HostnameTruth& truth : world.truths)
    if (geolocator.locate(truth.hostname)) ++located;
  std::printf("reloaded conventions geolocate %zu of %zu hostnames\n", located,
              world.truths.size());
  return 0;
}
