// Property-based tests: parameterized sweeps over seeds checking the
// invariants the system's correctness rests on.
#include <gtest/gtest.h>

#include <regex>

#include "core/hoiho.h"
#include "geo/dictionary.h"
#include "regex/matcher.h"
#include "regex/parser.h"
#include "sim/probing.h"
#include "util/rng.h"

namespace hoiho {
namespace {

// --- regex engine vs std::regex reference ------------------------------------

class RegexAgreement : public ::testing::TestWithParam<std::uint64_t> {};

// Builds a random pattern within the dialect (no possessive — std::regex has
// none) plus subject strings that sometimes match.
std::string random_pattern(util::Rng& rng) {
  static const char* pieces[] = {
      "[a-z]{3}", "[a-z]{2}", "[a-z]+",  "\\d+",  "\\d*",  "[a-z\\d]+",
      "[^\\.]+",  "xe",       "core",    "-",     "\\.",   "net",
  };
  std::string out = "^";
  const std::size_t n = 2 + rng.next_below(5);
  bool grouped = false;
  for (std::size_t i = 0; i < n; ++i) {
    const char* piece = pieces[rng.next_below(std::size(pieces))];
    if (!grouped && rng.next_bool(0.3)) {
      out += "(";
      out += piece;
      out += ")";
      grouped = true;
    } else {
      out += piece;
    }
  }
  out += "$";
  return out;
}

std::string random_subject(util::Rng& rng) {
  static const char* atoms[] = {"xe", "core", "lhr", "12", "3", "-", ".", "net", "a", "gw"};
  std::string out;
  const std::size_t n = 1 + rng.next_below(6);
  for (std::size_t i = 0; i < n; ++i) out += atoms[rng.next_below(std::size(atoms))];
  return out;
}

TEST_P(RegexAgreement, MatchesStdRegexOnDialect) {
  util::Rng rng(GetParam());
  for (int round = 0; round < 60; ++round) {
    const std::string pattern = random_pattern(rng);
    const auto mine = rx::parse(pattern);
    ASSERT_TRUE(mine.has_value()) << pattern;
    const std::regex reference(pattern.substr(1, pattern.size() - 2),
                               std::regex::ECMAScript);
    for (int s = 0; s < 25; ++s) {
      const std::string subject = random_subject(rng);
      const bool a = rx::match(*mine, subject).matched;
      const bool b = std::regex_match(subject, reference);
      ASSERT_EQ(a, b) << pattern << " on \"" << subject << "\"";
    }
  }
}

TEST_P(RegexAgreement, CapturesMatchStdRegex) {
  util::Rng rng(GetParam() ^ 0xabcd);
  for (int round = 0; round < 60; ++round) {
    const std::string pattern = random_pattern(rng);
    const auto mine = rx::parse(pattern);
    ASSERT_TRUE(mine.has_value());
    if (mine->groups.empty()) continue;
    const std::regex reference(pattern.substr(1, pattern.size() - 2));
    for (int s = 0; s < 25; ++s) {
      const std::string subject = random_subject(rng);
      const auto caps = rx::capture_strings(*mine, subject);
      std::smatch m;
      const bool b = std::regex_match(subject, m, reference);
      ASSERT_EQ(!caps.empty(), b) << pattern << " on " << subject;
      if (b) {
        ASSERT_EQ(caps[0], m[1].str()) << pattern << " on " << subject;
      }
    }
  }
}

TEST_P(RegexAgreement, PrintParseRoundTrip) {
  util::Rng rng(GetParam() ^ 0x1111);
  for (int round = 0; round < 100; ++round) {
    const std::string pattern = random_pattern(rng);
    const auto rx1 = rx::parse(pattern);
    ASSERT_TRUE(rx1.has_value());
    const std::string printed = rx1->to_string();
    const auto rx2 = rx::parse(printed);
    ASSERT_TRUE(rx2.has_value()) << printed;
    EXPECT_EQ(rx2->to_string(), printed);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RegexAgreement, ::testing::Values(1u, 2u, 3u, 4u, 5u));

// --- geodesy invariants --------------------------------------------------------

class GeodesyProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GeodesyProperty, TriangleInequalityish) {
  util::Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    const geo::Coordinate a{rng.next_range(-80, 80), rng.next_range(-180, 180)};
    const geo::Coordinate b{rng.next_range(-80, 80), rng.next_range(-180, 180)};
    const geo::Coordinate c{rng.next_range(-80, 80), rng.next_range(-180, 180)};
    const double ab = geo::distance_km(a, b);
    const double bc = geo::distance_km(b, c);
    const double ac = geo::distance_km(a, c);
    EXPECT_LE(ac, ab + bc + 1e-6);
    EXPECT_GE(ab, 0.0);
    EXPECT_LE(ab, 20038.0);  // half the circumference
  }
}

TEST_P(GeodesyProperty, RttBoundMonotoneInDistance) {
  util::Rng rng(GetParam() ^ 0x77);
  for (int i = 0; i < 200; ++i) {
    const double d1 = rng.next_range(0, 10000);
    const double d2 = d1 + rng.next_range(0, 5000);
    EXPECT_LE(geo::min_rtt_ms(d1), geo::min_rtt_ms(d2));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeodesyProperty, ::testing::Values(10u, 20u, 30u));

// --- consistency invariants ----------------------------------------------------

class ConsistencyProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ConsistencyProperty, SlackIsMonotone) {
  util::Rng rng(GetParam());
  measure::Measurements meas({}, 8);
  meas.vps = {measure::VantagePoint{"a", "us", {40.0, -74.0}},
              measure::VantagePoint{"b", "de", {50.0, 8.7}}};
  meas.pings = measure::RttMatrix(8, 2);
  for (topo::RouterId r = 0; r < 8; ++r)
    for (measure::VpId v = 0; v < 2; ++v) meas.pings.record(r, v, rng.next_range(1, 120));
  for (int i = 0; i < 100; ++i) {
    const geo::Coordinate p{rng.next_range(-60, 70), rng.next_range(-180, 180)};
    const auto r = static_cast<topo::RouterId>(rng.next_below(8));
    const double s1 = rng.next_range(0, 10), s2 = s1 + rng.next_range(0, 20);
    if (measure::rtt_consistent(meas.pings, meas.vps, r, p, s1)) {
      EXPECT_TRUE(measure::rtt_consistent(meas.pings, meas.vps, r, p, s2));
    }
  }
}

TEST_P(ConsistencyProperty, TruthAlwaysConsistentAcrossWorlds) {
  sim::WorldConfig config;
  config.seed = GetParam();
  config.operators = 12;
  const sim::World world = sim::generate_world(geo::builtin_dictionary(), config);
  sim::PingConfig pc;
  pc.seed = GetParam() ^ 0xfeed;
  const auto meas = sim::probe_pings(world, pc);
  for (const topo::Router& r : world.topology.routers()) {
    ASSERT_TRUE(measure::rtt_consistent(
        meas.pings, meas.vps, r.id,
        geo::builtin_dictionary().location(r.true_location).coord));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConsistencyProperty,
                         ::testing::Values(100u, 200u, 300u, 400u));

// --- abbreviation invariants ---------------------------------------------------

TEST(AbbrevProperty, EveryAtlasNameAbbreviatesItself) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  for (const geo::Location& loc : dict.all_locations()) {
    const std::string squashed = geo::squash_place_name(loc.city);
    EXPECT_TRUE(geo::is_place_abbrev(squashed, loc.city)) << loc.city;
    geo::AbbrevOptions opts;
    opts.require_contiguous4 = true;
    EXPECT_TRUE(geo::is_place_abbrev(squashed, loc.city, opts)) << loc.city;
  }
}

TEST(AbbrevProperty, PrefixesAreAbbreviations) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  for (const geo::Location& loc : dict.all_locations()) {
    const std::vector<std::string> words = geo::place_words(loc.city);
    if (words.empty() || words[0].size() < 3) continue;
    EXPECT_TRUE(geo::is_place_abbrev(words[0].substr(0, 3), loc.city)) << loc.city;
  }
}

// --- pipeline determinism --------------------------------------------------------

class PipelineDeterminism : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PipelineDeterminism, SameSeedSameResult) {
  sim::WorldConfig config;
  config.seed = GetParam();
  config.operators = 8;
  config.geohint_scheme_rate = 1.0;
  const auto run = [&] {
    const sim::World world = sim::generate_world(geo::builtin_dictionary(), config);
    sim::PingConfig pc;
    pc.seed = GetParam() ^ 0xaa;
    const auto meas = sim::probe_pings(world, pc);
    const core::Hoiho hoiho(geo::builtin_dictionary());
    const core::HoihoResult result = hoiho.run(world.topology, meas);
    std::string digest;
    for (const core::SuffixResult& sr : result.suffixes) {
      digest += sr.suffix + ":" + std::to_string(sr.eval.counts.tp) + "/" +
                std::to_string(sr.eval.counts.fp) + ";";
      for (const core::GeoRegex& gr : sr.nc.regexes) digest += gr.to_string() + ",";
    }
    return digest;
  };
  EXPECT_EQ(run(), run());
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineDeterminism, ::testing::Values(11u, 22u));

}  // namespace
}  // namespace hoiho
