// Unit tests for stage 4 (core/learn.h) — learning operator geohints,
// directly exercising the paper's fig. 8 scenarios.
#include "core/learn.h"

#include <gtest/gtest.h>

#include <deque>

#include "core/apparent.h"
#include "geo/dictionary.h"
#include "regex/parser.h"

namespace hoiho::core {
namespace {

class LearnTest : public ::testing::Test {
 protected:
  LearnTest() : dict_(geo::builtin_dictionary()), meas_({}, 64) {
    meas_.vps = {
        measure::VantagePoint{"was", "us", {38.91, -77.04}},  // near Ashburn
        measure::VantagePoint{"lon", "uk", {51.51, -0.13}},
        measure::VantagePoint{"tyo", "jp", {35.68, 139.69}},
        measure::VantagePoint{"zrh", "ch", {47.37, 8.54}},    // near Milan
        measure::VantagePoint{"sea", "us", {47.61, -122.33}},
    };
    meas_.pings = measure::RttMatrix(64, meas_.vps.size());
  }

  void add_near(std::string_view raw, measure::VpId vp, double rtt = 2.0) {
    const topo::RouterId r = next_router_++;
    for (measure::VpId v = 0; v < meas_.vps.size(); ++v)
      meas_.pings.record(r, v, v == vp ? rtt : 300.0);
    hostnames_.push_back(*dns::parse_hostname(raw, arena_));
    const ApparentTagger tagger(dict_, meas_, {});
    tagged_.push_back(tagger.tag(topo::HostnameRef{r, &hostnames_.back()}));
  }

  static NamingConvention he_nc() {
    NamingConvention nc;
    nc.suffix = "he.net";
    GeoRegex gr;
    gr.regex = *rx::parse("^.+\\.([a-z]{3})\\d+\\.he\\.net$");
    gr.plan.roles = {Role::kIata};
    nc.regexes.push_back(std::move(gr));
    return nc;
  }

  static NamingConvention ntt_nc() {
    NamingConvention nc;
    nc.suffix = "ntt.net";
    GeoRegex gr;
    gr.regex = *rx::parse("^.+\\.([a-z]{6})\\d+\\.([a-z]{2})\\.bb\\.gin\\.ntt\\.net$");
    gr.plan.roles = {Role::kClli, Role::kCountryCode};
    nc.regexes.push_back(std::move(gr));
    return nc;
  }

  // Seeds the NC with enough clean TPs to pass the seed gate (>=3 unique
  // hints, PPV > 40%).
  void seed_he() {
    add_near("c1.lhr1.he.net", 1);
    add_near("c1.nrt1.he.net", 2);
    add_near("c1.sea1.he.net", 4);
    add_near("c1.zrh1.he.net", 3);
  }

  geo::LocationId city(std::string_view name, std::string_view country,
                       std::string_view state = "") const {
    for (geo::LocationId id : dict_.lookup(geo::HintType::kCityName,
                                           geo::squash_place_name(name))) {
      if (!geo::same_country(dict_.location(id).country, country)) continue;
      if (!state.empty() && dict_.location(id).state != state) continue;
      return id;
    }
    return geo::kInvalidLocation;
  }

  const geo::GeoDictionary& dict_;
  measure::Measurements meas_;
  util::Arena arena_;  // backs hostnames_ (dns::Hostname is a view)
  std::deque<dns::Hostname> hostnames_;
  std::vector<TaggedHostname> tagged_;
  topo::RouterId next_router_ = 0;
};

TEST_F(LearnTest, Figure8aAshLearnsAshburn) {
  seed_he();
  // Four Ashburn routers named "ash" (fig. 8a).
  for (int i = 0; i < 4; ++i) add_near("core1.ash1.he.net", 0, 1.0 + i);

  NamingConvention nc = he_nc();
  const Evaluator ev(dict_, meas_);
  const NcEvaluation before = ev.evaluate(nc, tagged_);
  EXPECT_EQ(before.counts.fp, 4u);  // "ash" reads as Nashua, NH

  const GeohintLearner learner(ev);
  const auto learned = learner.learn(nc, tagged_, before);
  ASSERT_EQ(learned.size(), 1u);
  EXPECT_EQ(learned[0].code, "ash");
  EXPECT_EQ(dict_.location(learned[0].location).city, "Ashburn");
  EXPECT_EQ(dict_.location(learned[0].location).state, "va");
  EXPECT_EQ(learned[0].tp, 4u);

  const NcEvaluation after = ev.evaluate(nc, tagged_);
  EXPECT_EQ(after.counts.fp, 0u);
  EXPECT_EQ(after.counts.tp, 8u);
}

TEST_F(LearnTest, Figure8bMlanitLearnsMilan) {
  // NTT's home-made CLLI "mlanit" with a country code: one congruent router
  // suffices (fig. 8b).
  add_near("ae-7.snjsca04.us.bb.gin.ntt.net", 4, 12.0);  // Seattle VP -> San Jose ~ 11 ms
  add_near("ae-1.londen01.uk.bb.gin.ntt.net", 1);
  add_near("ae-2.tokyjp05.jp.bb.gin.ntt.net", 2);
  add_near("ae-7.r02.mlanit01.it.bb.gin.ntt.net", 3, 6.0);
  add_near("ae-3.r21.mlanit02.it.bb.gin.ntt.net", 3, 6.0);

  NamingConvention nc = ntt_nc();
  const Evaluator ev(dict_, meas_);
  const NcEvaluation before = ev.evaluate(nc, tagged_);
  EXPECT_GE(before.counts.unk, 2u);  // "mlanit" is not a dictionary CLLI

  const GeohintLearner learner(ev);
  const auto learned = learner.learn(nc, tagged_, before);
  bool found = false;
  for (const LearnedHint& lh : learned) {
    if (lh.code == "mlanit") {
      found = true;
      EXPECT_EQ(dict_.location(lh.location).city, "Milan");
      EXPECT_EQ(lh.type, geo::HintType::kClli);
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(LearnTest, SeedGateRequiresUniqueHints) {
  // Only two unique clean hints: the learner must refuse to run.
  add_near("c1.lhr1.he.net", 1);
  add_near("c1.nrt1.he.net", 2);
  for (int i = 0; i < 4; ++i) add_near("core1.ash1.he.net", 0, 1.0);

  NamingConvention nc = he_nc();
  const Evaluator ev(dict_, meas_);
  const NcEvaluation before = ev.evaluate(nc, tagged_);
  const GeohintLearner learner(ev);
  EXPECT_TRUE(learner.learn(nc, tagged_, before).empty());
}

TEST_F(LearnTest, CongruenceRequiresThreeRoutersWithoutAnnotation) {
  seed_he();
  add_near("core1.ash1.he.net", 0, 1.0);
  add_near("core2.ash1.he.net", 0, 1.5);  // only two congruent routers

  NamingConvention nc = he_nc();
  const Evaluator ev(dict_, meas_);
  const GeohintLearner learner(ev);
  EXPECT_TRUE(learner.learn(nc, tagged_, ev.evaluate(nc, tagged_)).empty());
}

TEST_F(LearnTest, SingleRouterSufficesWithAnnotation) {
  // ntt-style: country code present -> one congruent router is enough.
  add_near("ae-1.londen01.uk.bb.gin.ntt.net", 1);
  add_near("ae-2.tokyjp05.jp.bb.gin.ntt.net", 2);
  add_near("ae-9.snjsca04.us.bb.gin.ntt.net", 4, 12.0);
  add_near("ae-7.r02.mlanit01.it.bb.gin.ntt.net", 3, 6.0);

  NamingConvention nc = ntt_nc();
  const Evaluator ev(dict_, meas_);
  const GeohintLearner learner(ev);
  const auto learned = learner.learn(nc, tagged_, ev.evaluate(nc, tagged_));
  bool found = false;
  for (const LearnedHint& lh : learned)
    if (lh.code == "mlanit") found = true;
  EXPECT_TRUE(found);
}

TEST_F(LearnTest, MustBeatExistingHintByMoreThanOneTp) {
  seed_he();
  // Routers genuinely near Nashua (Boston VP would be ideal; Washington VP
  // at 620 km with a 7 ms RTT keeps Nashua feasible) named "ash": the
  // existing IATA meaning explains them, so nothing should be learned.
  for (int i = 0; i < 4; ++i) {
    const topo::RouterId r = next_router_;
    add_near("core1.ash1.he.net", 0, 7.0);
    (void)r;
  }
  NamingConvention nc = he_nc();
  const Evaluator ev(dict_, meas_);
  const NcEvaluation before = ev.evaluate(nc, tagged_);
  // With Nashua feasible these are TPs, not FPs: nothing to learn from.
  EXPECT_EQ(before.counts.fp, 0u);
  const GeohintLearner learner(ev);
  EXPECT_TRUE(learner.learn(nc, tagged_, before).empty());
}

TEST_F(LearnTest, AnnotationFiltersCandidates) {
  seed_he();
  // "ldn" with a .uk context... he_nc has no cc; craft hostnames whose code
  // "ldn" should learn London (no annotation, so 3+ routers needed).
  for (int i = 0; i < 3; ++i) add_near("core1.ldn2.he.net", 1, 2.0);
  NamingConvention nc = he_nc();
  const Evaluator ev(dict_, meas_);
  const NcEvaluation before = ev.evaluate(nc, tagged_);
  EXPECT_GE(before.counts.unk, 3u);
  const GeohintLearner learner(ev);
  const auto learned = learner.learn(nc, tagged_, before);
  bool found = false;
  for (const LearnedHint& lh : learned) {
    if (lh.code == "ldn") {
      found = true;
      EXPECT_EQ(dict_.location(lh.location).city, "London");
      EXPECT_TRUE(geo::same_country(dict_.location(lh.location).country, "uk"));
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(LearnTest, PpvGateRejectsScatteredCode) {
  seed_he();
  // "ash" used for routers in two far-apart places: candidate PPV < 80%.
  add_near("core1.ash1.he.net", 0, 1.0);
  add_near("core2.ash1.he.net", 0, 1.0);
  add_near("core3.ash1.he.net", 2, 2.0);  // Tokyo!
  add_near("core4.ash1.he.net", 2, 2.0);
  NamingConvention nc = he_nc();
  const Evaluator ev(dict_, meas_);
  const GeohintLearner learner(ev);
  EXPECT_TRUE(learner.learn(nc, tagged_, ev.evaluate(nc, tagged_)).empty());
}

TEST_F(LearnTest, RankingPrefersFacilityThenPopulation) {
  // Paper fig. 8a's table: Ashburn VA (facility, 43k) beats Ashland VA and
  // Ashland OR even when all are feasible — verified via the abbreviation
  // candidates the learner consults.
  seed_he();
  for (int i = 0; i < 4; ++i) add_near("core1.ash1.he.net", 0, 4.0);  // 400 km slack
  NamingConvention nc = he_nc();
  const Evaluator ev(dict_, meas_);
  const GeohintLearner learner(ev);
  const auto learned = learner.learn(nc, tagged_, ev.evaluate(nc, tagged_));
  ASSERT_EQ(learned.size(), 1u);
  EXPECT_EQ(dict_.location(learned[0].location).city, "Ashburn");
}

TEST_F(LearnTest, CityNamePlansRequireContiguous4) {
  // A city-name convention extracting "ftcollins"-style abbreviations needs
  // four contiguous characters; "asb" alone must not be learned for a
  // city-name plan.
  NamingConvention nc;
  nc.suffix = "x.net";
  GeoRegex gr;
  gr.regex = *rx::parse("^([a-z]+)\\d*\\.x\\.net$");
  gr.plan.roles = {Role::kCityName};
  nc.regexes.push_back(std::move(gr));

  add_near("london1.x.net", 1);
  add_near("tokyo1.x.net", 2);
  add_near("seattle1.x.net", 4);
  for (int i = 0; i < 3; ++i) add_near("asb1.x.net", 0, 1.0);

  const Evaluator ev(dict_, meas_);
  const GeohintLearner learner(ev);
  const auto learned = learner.learn(nc, tagged_, ev.evaluate(nc, tagged_));
  for (const LearnedHint& lh : learned) EXPECT_NE(lh.code, "asb");
}

TEST_F(LearnTest, LearnedHintRecordsSupport) {
  seed_he();
  for (int i = 0; i < 5; ++i) add_near("core1.ash1.he.net", 0, 1.0);
  NamingConvention nc = he_nc();
  const Evaluator ev(dict_, meas_);
  const GeohintLearner learner(ev);
  const auto learned = learner.learn(nc, tagged_, ev.evaluate(nc, tagged_));
  ASSERT_EQ(learned.size(), 1u);
  EXPECT_EQ(learned[0].tp, 5u);
  EXPECT_EQ(learned[0].fp, 0u);
  EXPECT_EQ(learned[0].existing_tp, 0u);  // Nashua infeasible for all
}

}  // namespace
}  // namespace hoiho::core
