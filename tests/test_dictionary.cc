// Unit tests for geo/dictionary.h and the embedded atlas, including the
// collision examples the paper's narrative depends on.
#include "geo/dictionary.h"

#include <gtest/gtest.h>

namespace hoiho::geo {
namespace {

// Finds a location by city/country in a dictionary (test helper).
LocationId find(const GeoDictionary& dict, std::string_view city, std::string_view country,
                std::string_view state = "") {
  for (LocationId id : dict.lookup(HintType::kCityName, squash_place_name(city))) {
    const Location& loc = dict.location(id);
    if (!same_country(loc.country, country)) continue;
    if (!state.empty() && loc.state != state) continue;
    return id;
  }
  return kInvalidLocation;
}

TEST(Dictionary, AddAndLookupCodes) {
  GeoDictionary dict;
  const LocationId id = dict.add_location({"Testville", "tx", "us", {30.0, -97.0}, 1000, false});
  dict.add_code(HintType::kIata, "tvl", id);
  const auto hits = dict.lookup(HintType::kIata, "tvl");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], id);
  EXPECT_TRUE(dict.lookup(HintType::kIata, "xxx").empty());
}

TEST(Dictionary, RejectsWrongWidthCodes) {
  GeoDictionary dict;
  const LocationId id = dict.add_location({"X", "", "us", {}, 0, false});
  dict.add_code(HintType::kIata, "toolong", id);
  EXPECT_TRUE(dict.lookup(HintType::kIata, "toolong").empty());
  EXPECT_TRUE(dict.codes(id).iata.empty());
}

TEST(Dictionary, CityNameIndexUsesSquashedForm) {
  GeoDictionary dict;
  const LocationId id = dict.add_location({"New York", "ny", "us", {40.7, -74.0}, 8000000, false});
  const auto hits = dict.lookup(HintType::kCityName, "newyork");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], id);
}

TEST(Dictionary, CityAliases) {
  GeoDictionary dict;
  const LocationId id = dict.add_location({"Athens", "", "gr", {38.0, 23.7}, 664000, false});
  dict.add_city_alias("Atene", id);  // the seabone.net Italian name (paper §6.1)
  const auto hits = dict.lookup(HintType::kCityName, "atene");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], id);
}

TEST(Dictionary, FacilityAddressSquashing) {
  GeoDictionary dict;
  const LocationId id = dict.add_location({"New York", "ny", "us", {40.7, -74.0}, 8000000, false});
  dict.add_facility_address("111 8th Ave", id);
  EXPECT_FALSE(dict.lookup(HintType::kFacility, "1118thave").empty());
  EXPECT_TRUE(dict.location(id).has_facility);
  ASSERT_EQ(dict.facility_addresses(id).size(), 1u);
  EXPECT_EQ(dict.facility_addresses(id)[0], "1118thave");
}

TEST(Dictionary, CountryAndStateKnowledge) {
  GeoDictionary dict;
  dict.add_location({"Ashburn", "va", "us", {39.0, -77.5}, 43000, false});
  EXPECT_TRUE(dict.country_known("us"));
  EXPECT_FALSE(dict.country_known("fr"));
  EXPECT_TRUE(dict.state_known("us", "va"));
  EXPECT_FALSE(dict.state_known("us", "tx"));
  EXPECT_TRUE(dict.any_state_known("va"));
}

TEST(Dictionary, MatchesCountryHandlesUk) {
  GeoDictionary dict;
  const LocationId id = dict.add_location({"London", "", "gb", {51.5, -0.1}, 8982000, false});
  EXPECT_TRUE(dict.matches_country("uk", id));
  EXPECT_TRUE(dict.matches_country("gb", id));
  EXPECT_FALSE(dict.matches_country("us", id));
}

TEST(Dictionary, DuplicateCodeRegistrationIsIdempotent) {
  GeoDictionary dict;
  const LocationId id = dict.add_location({"X", "", "us", {}, 0, false});
  dict.add_code(HintType::kIata, "abc", id);
  dict.add_code(HintType::kIata, "abc", id);
  EXPECT_EQ(dict.lookup(HintType::kIata, "abc").size(), 1u);
  EXPECT_EQ(dict.codes(id).iata.size(), 1u);
}

// --- embedded atlas ----------------------------------------------------------

TEST(BuiltinAtlas, HasSubstantialCoverage) {
  const GeoDictionary& dict = builtin_dictionary();
  EXPECT_GE(dict.size(), 250u);
}

TEST(BuiltinAtlas, AshIsNashuaNotAshburn) {
  // Figure 1's fundamental challenge: IATA "ash" is Nashua, NH.
  const GeoDictionary& dict = builtin_dictionary();
  const auto hits = dict.lookup(HintType::kIata, "ash");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(dict.location(hits[0]).city, "Nashua");
  EXPECT_EQ(dict.location(hits[0]).state, "nh");
  // Ashburn VA itself has no IATA code.
  const LocationId ashburn = find(dict, "Ashburn", "us", "va");
  ASSERT_NE(ashburn, kInvalidLocation);
  EXPECT_TRUE(dict.codes(ashburn).iata.empty());
  EXPECT_TRUE(dict.location(ashburn).has_facility);
}

TEST(BuiltinAtlas, AmbiguousCityNamesExpandToEverySibling) {
  // The fusion subsystem leans on lookup() returning *all* siblings of an
  // ambiguous city name, in stable dictionary order: "melbourne" must yield
  // both the Victorian capital and the Florida city as distinct locations.
  const GeoDictionary& dict = builtin_dictionary();
  const auto hits = dict.lookup(HintType::kCityName, squash_place_name("Melbourne"));
  ASSERT_GE(hits.size(), 2u);
  bool saw_au = false, saw_us = false;
  for (LocationId id : hits) {
    const Location& loc = dict.location(id);
    EXPECT_EQ(squash_place_name(loc.city), "melbourne");
    if (same_country(loc.country, "au")) saw_au = true;
    if (same_country(loc.country, "us")) saw_us = true;
  }
  EXPECT_TRUE(saw_au);
  EXPECT_TRUE(saw_us);
  // The span is deterministic: two lookups see the same ids in the same order.
  const auto again = dict.lookup(HintType::kCityName, "melbourne");
  ASSERT_EQ(again.size(), hits.size());
  for (std::size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(again[i], hits[i]);
}

TEST(BuiltinAtlas, InterfaceTokenCollisions) {
  // Challenge 5: "gig", "eth", "cpe" are all real IATA codes.
  const GeoDictionary& dict = builtin_dictionary();
  ASSERT_FALSE(dict.lookup(HintType::kIata, "gig").empty());
  EXPECT_EQ(dict.location(dict.lookup(HintType::kIata, "gig")[0]).city, "Rio de Janeiro");
  ASSERT_FALSE(dict.lookup(HintType::kIata, "eth").empty());
  EXPECT_EQ(dict.location(dict.lookup(HintType::kIata, "eth")[0]).city, "Eilat");
  ASSERT_FALSE(dict.lookup(HintType::kIata, "cpe").empty());
  EXPECT_EQ(dict.location(dict.lookup(HintType::kIata, "cpe")[0]).city, "Campeche");
}

TEST(BuiltinAtlas, MetroCodes) {
  const GeoDictionary& dict = builtin_dictionary();
  for (const char* code : {"lon", "nyc", "chi", "was", "tyo"}) {
    EXPECT_FALSE(dict.lookup(HintType::kIata, code).empty()) << code;
  }
}

TEST(BuiltinAtlas, CllidPrefixes) {
  const GeoDictionary& dict = builtin_dictionary();
  const auto asbn = dict.lookup(HintType::kClli, "asbnva");
  ASSERT_EQ(asbn.size(), 1u);
  EXPECT_EQ(dict.location(asbn[0]).city, "Ashburn");
  const auto lond = dict.lookup(HintType::kClli, "londen");
  ASSERT_EQ(lond.size(), 1u);
  EXPECT_TRUE(same_country(dict.location(lond[0]).country, "uk"));
}

TEST(BuiltinAtlas, LondonCityNameCollidesWithLondonOntario) {
  // Challenge 1: "london" the city name refers to London UK and London ON.
  const GeoDictionary& dict = builtin_dictionary();
  const auto hits = dict.lookup(HintType::kCityName, "london");
  ASSERT_GE(hits.size(), 2u);
  bool gb = false, ca = false;
  for (LocationId id : hits) {
    if (same_country(dict.location(id).country, "gb")) gb = true;
    if (same_country(dict.location(id).country, "ca")) ca = true;
  }
  EXPECT_TRUE(gb);
  EXPECT_TRUE(ca);
}

TEST(BuiltinAtlas, LocodesEmbedCountry) {
  const GeoDictionary& dict = builtin_dictionary();
  const auto hits = dict.lookup(HintType::kLocode, "gblhr");
  ASSERT_FALSE(hits.empty());
  EXPECT_TRUE(same_country(dict.location(hits[0]).country, "gb"));
}

TEST(BuiltinAtlas, MultipleWashingtons) {
  // Paper §2: city names are ambiguous (10 Washingtons in their dictionary).
  const GeoDictionary& dict = builtin_dictionary();
  EXPECT_GE(dict.lookup(HintType::kCityName, "washington").size(), 1u);
  EXPECT_GE(dict.lookup(HintType::kCityName, "ashburn").size(), 2u);  // VA and GA
  EXPECT_GE(dict.lookup(HintType::kCityName, "ashland").size(), 2u);  // VA and OR
}

TEST(BuiltinAtlas, AbbreviationCandidates) {
  const GeoDictionary& dict = builtin_dictionary();
  const auto cands = dict.abbreviation_candidates("ash");
  bool has_ashburn = false, has_ashland = false;
  for (LocationId id : cands) {
    if (dict.location(id).city == "Ashburn") has_ashburn = true;
    if (dict.location(id).city == "Ashland") has_ashland = true;
  }
  EXPECT_TRUE(has_ashburn);
  EXPECT_TRUE(has_ashland);
}

TEST(BuiltinAtlas, FacilityRecords) {
  const GeoDictionary& dict = builtin_dictionary();
  const auto hits = dict.lookup(HintType::kFacility, "1118thave");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(dict.location(hits[0]).city, "New York");
  EXPECT_FALSE(dict.lookup(HintType::kFacility, "529bryant").empty());
}

TEST(BuiltinAtlas, CoordinatesAnnotated) {
  const GeoDictionary& dict = builtin_dictionary();
  for (const Location& loc : dict.all_locations()) {
    EXPECT_TRUE(loc.coord.valid()) << loc.city;
    EXPECT_FALSE(loc.country.empty()) << loc.city;
  }
}

TEST(BuiltinAtlas, ClliPrefixesAreSixLetters) {
  const GeoDictionary& dict = builtin_dictionary();
  for (LocationId id = 0; id < dict.size(); ++id) {
    for (const std::string& clli : dict.codes(id).clli) {
      EXPECT_EQ(clli.size(), 6u) << dict.location(id).city;
    }
  }
}

}  // namespace
}  // namespace hoiho::geo
