// End-to-end integration tests: the five-stage pipeline against synthetic
// worlds with known ground truth.
#include <gtest/gtest.h>

#include "core/hoiho.h"
#include "sim/scenario.h"

namespace hoiho::core {
namespace {

geo::LocationId find_city(const geo::GeoDictionary& dict, std::string_view city,
                          std::string_view country, std::string_view state = "") {
  for (geo::LocationId id : dict.lookup(geo::HintType::kCityName,
                                        geo::squash_place_name(city))) {
    if (!geo::same_country(dict.location(id).country, country)) continue;
    if (!state.empty() && dict.location(id).state != state) continue;
    return id;
  }
  return geo::kInvalidLocation;
}

// A clean single-operator world with one naming scheme.
sim::World simple_world(core::Role role, bool cc, std::size_t routers_per_city,
                        std::uint64_t seed) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  sim::World world;
  world.dict = &dict;
  world.vps = sim::make_vps(dict, 90);
  sim::OperatorSpec op;
  op.suffix = "testnet.net";
  util::Rng scheme_rng(seed);
  op.scheme = sim::sample_scheme(role, cc, false, scheme_rng);
  op.router_count = 0;  // routers added below
  const char* cities[][2] = {{"London", "gb"}, {"Tokyo", "jp"},      {"Seattle", "us"},
                             {"Frankfurt", "de"}, {"Singapore", "sg"}, {"Sydney", "au"}};
  util::Rng rng(seed);
  for (const auto& c : cities) {
    const geo::LocationId loc = find_city(dict, c[0], c[1]);
    for (std::size_t i = 0; i < routers_per_city; ++i) {
      const topo::RouterId rid = world.topology.add_router(loc);
      const auto rendered = sim::render_hostname(op.scheme, dict, loc, op.suffix, rng);
      if (rendered) {
        world.topology.add_interface(rid, "10.0.0.1", rendered->hostname);
      }
    }
  }
  world.operators.push_back(op);
  return world;
}

TEST(HoihoE2e, LearnsGoodIataConvention) {
  const sim::World world = simple_world(Role::kIata, false, 5, 21);
  const auto meas = sim::probe_pings(world, {});
  const Hoiho hoiho(geo::builtin_dictionary());
  const HoihoResult result = hoiho.run(world.topology, meas);
  ASSERT_EQ(result.suffixes.size(), 1u);
  const SuffixResult& sr = result.suffixes[0];
  ASSERT_TRUE(sr.has_nc());
  EXPECT_EQ(sr.cls, NcClass::kGood);
  EXPECT_GE(sr.eval.counts.tp, 25u);
  EXPECT_EQ(sr.eval.counts.fp, 0u);
  EXPECT_GE(sr.eval.unique_count(), 5u);
}

TEST(HoihoE2e, LearnsCityConvention) {
  const sim::World world = simple_world(Role::kCityName, false, 5, 23);
  const auto meas = sim::probe_pings(world, {});
  const Hoiho hoiho(geo::builtin_dictionary());
  const HoihoResult result = hoiho.run(world.topology, meas);
  ASSERT_EQ(result.suffixes.size(), 1u);
  const SuffixResult& sr = result.suffixes[0];
  ASSERT_TRUE(sr.has_nc());
  EXPECT_TRUE(is_usable(sr.cls));
  bool city_plan = false;
  for (const GeoRegex& gr : sr.nc.regexes)
    if (gr.plan.primary() == Role::kCityName) city_plan = true;
  EXPECT_TRUE(city_plan);
}

TEST(HoihoE2e, LearnsClliWithCountryConvention) {
  const sim::World world = simple_world(Role::kClli, true, 5, 27);
  const auto meas = sim::probe_pings(world, {});
  const Hoiho hoiho(geo::builtin_dictionary());
  const HoihoResult result = hoiho.run(world.topology, meas);
  ASSERT_EQ(result.suffixes.size(), 1u);
  const SuffixResult& sr = result.suffixes[0];
  ASSERT_TRUE(sr.has_nc());
  EXPECT_TRUE(is_usable(sr.cls));
  bool clli_plan = false;
  for (const GeoRegex& gr : sr.nc.regexes)
    if (gr.plan.primary() == Role::kClli) clli_plan = true;
  EXPECT_TRUE(clli_plan);
}

TEST(HoihoE2e, SkipsSuffixWithTooFewHints) {
  sim::World world;
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  world.dict = &dict;
  world.vps = sim::make_vps(dict, 40);
  const topo::RouterId r = world.topology.add_router(0);
  world.topology.add_interface(r, "10.0.0.1", "core1.tiny.net");
  const auto meas = sim::probe_pings(world, {});
  const Hoiho hoiho(dict);
  const HoihoResult result = hoiho.run(world.topology, meas);
  ASSERT_EQ(result.suffixes.size(), 1u);
  EXPECT_FALSE(result.suffixes[0].has_nc());
}

TEST(HoihoE2e, AblationLearningImprovesCoverage) {
  // The paper's §6.1 ablation: disabling stage 4 lowers correct coverage.
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  sim::World world;
  world.dict = &dict;
  world.vps = sim::make_vps(dict, 90);
  sim::OperatorSpec op;
  op.suffix = "testnet.net";
  op.scheme.hint_role = Role::kIata;
  op.scheme.labels = {{sim::Part::role(), sim::Part::num()},
                      {sim::Part::geo(), sim::Part::num()}};
  const geo::LocationId ashburn = find_city(dict, "Ashburn", "us", "va");
  op.scheme.custom_codes[ashburn] = "ash";
  util::Rng rng(31);
  for (const geo::LocationId loc :
       {ashburn, find_city(dict, "London", "gb"), find_city(dict, "Tokyo", "jp"),
        find_city(dict, "Seattle", "us"), find_city(dict, "Frankfurt", "de")}) {
    for (int i = 0; i < 5; ++i) {
      const topo::RouterId rid = world.topology.add_router(loc);
      const auto rendered = sim::render_hostname(op.scheme, dict, loc, op.suffix, rng);
      world.topology.add_interface(rid, "10.0.0.1", rendered->hostname);
    }
  }
  const auto meas = sim::probe_pings(world, {});

  HoihoConfig with;
  HoihoConfig without;
  without.enable_learning = false;
  const HoihoResult on = Hoiho(dict, with).run(world.topology, meas);
  const HoihoResult off = Hoiho(dict, without).run(world.topology, meas);
  ASSERT_EQ(on.suffixes.size(), 1u);
  ASSERT_EQ(off.suffixes.size(), 1u);
  EXPECT_GT(on.suffixes[0].eval.counts.tp, off.suffixes[0].eval.counts.tp);
  EXPECT_FALSE(on.suffixes[0].nc.learned.empty());
  EXPECT_TRUE(off.suffixes[0].nc.learned.empty());
}

TEST(HoihoE2e, GeneratedWorldMostGeohintOperatorsUsable) {
  sim::WorldConfig config;
  config.seed = 1234;
  config.operators = 25;
  config.geohint_scheme_rate = 1.0;  // every operator embeds geohints
  config.hostname_rate = 0.9;
  const sim::World world = sim::generate_world(geo::builtin_dictionary(), config);
  const auto meas = sim::probe_pings(world, {});
  const Hoiho hoiho(geo::builtin_dictionary());
  const HoihoResult result = hoiho.run(world.topology, meas);
  std::size_t usable = 0, attempted = 0;
  for (const SuffixResult& sr : result.suffixes) {
    if (sr.tagged_count < 3) continue;
    ++attempted;
    if (sr.usable()) ++usable;
  }
  ASSERT_GT(attempted, 10u);
  EXPECT_GT(static_cast<double>(usable) / static_cast<double>(attempted), 0.5);
}

TEST(HoihoE2e, StaleHostnamesDoNotBreakGoodConventions) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  sim::World world;
  world.dict = &dict;
  world.vps = sim::make_vps(dict, 90);
  sim::OperatorSpec op;
  op.suffix = "testnet.net";
  op.scheme.hint_role = Role::kIata;
  op.scheme.labels = {{sim::Part::role(), sim::Part::num()},
                      {sim::Part::geo(), sim::Part::num()}};
  // Comparable populations so the population-weighted placement spreads
  // routers across all four cities.
  op.footprint = {find_city(dict, "Seattle", "us"), find_city(dict, "Frankfurt", "de"),
                  find_city(dict, "Denver", "us"), find_city(dict, "Boston", "us")};
  op.router_count = 40;
  util::Rng rng(37);
  sim::add_operator(world, op, 1.0, /*stale_rate=*/0.05, rng);
  const auto meas = sim::probe_pings(world, {});
  const Hoiho hoiho(dict);
  const HoihoResult result = hoiho.run(world.topology, meas);
  ASSERT_EQ(result.suffixes.size(), 1u);
  EXPECT_TRUE(result.suffixes[0].usable());
}

TEST(HoihoE2e, GeolocatedRouterCountCountsDistinctRouters) {
  const sim::World world = simple_world(Role::kIata, false, 4, 41);
  const auto meas = sim::probe_pings(world, {});
  const Hoiho hoiho(geo::builtin_dictionary());
  const HoihoResult result = hoiho.run(world.topology, meas);
  EXPECT_LE(result.geolocated_router_count(), world.topology.size());
  EXPECT_GT(result.geolocated_router_count(), 0u);
  EXPECT_EQ(result.count(NcClass::kGood) + result.count(NcClass::kPromising) +
                result.count(NcClass::kPoor),
            result.suffixes.size() -
                [&] {
                  std::size_t none = 0;
                  for (const auto& sr : result.suffixes)
                    if (!sr.has_nc()) ++none;
                  return none;
                }());
}

}  // namespace
}  // namespace hoiho::core
