// Unit tests for geo/dictionary_io.h.
#include "geo/dictionary_io.h"

#include <gtest/gtest.h>

#include <sstream>

namespace hoiho::geo {
namespace {

GeoDictionary sample() {
  GeoDictionary dict;
  const LocationId ash = dict.add_location({"Ashburn", "va", "us", {39.04, -77.49}, 43511, false});
  const LocationId lon = dict.add_location({"London", "", "gb", {51.51, -0.13}, 8982000, false});
  dict.add_code(HintType::kIata, "lhr", lon);
  dict.add_code(HintType::kIata, "lon", lon);
  dict.add_code(HintType::kClli, "asbnva", ash);
  dict.add_code(HintType::kLocode, "gblon", lon);
  dict.add_facility_address("Telehouse North", lon);
  return dict;
}

TEST(DictionaryIo, RoundTrip) {
  const GeoDictionary original = sample();
  std::ostringstream out;
  save_dictionary(out, original);
  std::istringstream in(out.str());
  std::string error;
  const auto loaded = load_dictionary(in, &error);
  ASSERT_TRUE(loaded.has_value()) << error;

  EXPECT_EQ(loaded->size(), original.size());
  EXPECT_EQ(loaded->lookup(HintType::kIata, "lhr").size(), 1u);
  EXPECT_EQ(loaded->lookup(HintType::kClli, "asbnva").size(), 1u);
  EXPECT_EQ(loaded->lookup(HintType::kLocode, "gblon").size(), 1u);
  EXPECT_EQ(loaded->lookup(HintType::kFacility, "telehousenorth").size(), 1u);
  const Location& ash = loaded->location(loaded->lookup(HintType::kClli, "asbnva")[0]);
  EXPECT_EQ(ash.city, "Ashburn");
  EXPECT_EQ(ash.state, "va");
  EXPECT_NEAR(ash.coord.lat, 39.04, 1e-3);
  EXPECT_EQ(ash.population, 43511u);
}

TEST(DictionaryIo, CommentsAndBlanksIgnored) {
  std::istringstream in("# comment\nL,Rome,,it,41.90,12.50,2873000\n\nC,iata,fco,0\n");
  const auto dict = load_dictionary(in);
  ASSERT_TRUE(dict.has_value());
  EXPECT_EQ(dict->size(), 1u);
  EXPECT_EQ(dict->lookup(HintType::kIata, "fco").size(), 1u);
}

TEST(DictionaryIo, AliasRecords) {
  std::istringstream in("L,Athens,,gr,37.98,23.73,664000\nA,Atene,0\n");
  const auto dict = load_dictionary(in);
  ASSERT_TRUE(dict.has_value());
  EXPECT_EQ(dict->lookup(HintType::kCityName, "atene").size(), 1u);
}

TEST(DictionaryIo, RejectsUnknownRecordType) {
  std::istringstream in("Z,whatever\n");
  std::string error;
  EXPECT_FALSE(load_dictionary(in, &error).has_value());
  EXPECT_NE(error.find("unknown record"), std::string::npos);
}

TEST(DictionaryIo, RejectsShortLRecord) {
  std::istringstream in("L,OnlyCity\n");
  std::string error;
  EXPECT_FALSE(load_dictionary(in, &error).has_value());
  EXPECT_NE(error.find("line 1"), std::string::npos);
}

TEST(DictionaryIo, RejectsOutOfRangeIndex) {
  std::istringstream in("L,Rome,,it,41.90,12.50,2873000\nC,iata,fco,5\n");
  std::string error;
  EXPECT_FALSE(load_dictionary(in, &error).has_value());
  EXPECT_NE(error.find("out of range"), std::string::npos);
}

TEST(DictionaryIo, RejectsUnknownCodeType) {
  std::istringstream in("L,Rome,,it,41.90,12.50,2873000\nC,zipcode,00100,0\n");
  std::string error;
  EXPECT_FALSE(load_dictionary(in, &error).has_value());
  EXPECT_NE(error.find("unknown code type"), std::string::npos);
}

TEST(DictionaryIo, BuiltinAtlasRoundTrips) {
  std::ostringstream out;
  save_dictionary(out, builtin_dictionary());
  std::istringstream in(out.str());
  std::string error;
  const auto loaded = load_dictionary(in, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->size(), builtin_dictionary().size());
  EXPECT_EQ(loaded->lookup(HintType::kIata, "ash").size(), 1u);
}

}  // namespace
}  // namespace hoiho::geo
