// Unit tests for the apply-side API (core/geolocate.h).
#include "core/geolocate.h"

#include <gtest/gtest.h>

#include "geo/dictionary.h"
#include "regex/parser.h"

namespace hoiho::core {
namespace {

geo::LocationId find_city(const geo::GeoDictionary& dict, std::string_view city,
                          std::string_view country, std::string_view state = "") {
  for (geo::LocationId id : dict.lookup(geo::HintType::kCityName,
                                        geo::squash_place_name(city))) {
    if (!geo::same_country(dict.location(id).country, country)) continue;
    if (!state.empty() && dict.location(id).state != state) continue;
    return id;
  }
  return geo::kInvalidLocation;
}

NamingConvention he_nc(const geo::GeoDictionary& dict, bool with_learned) {
  NamingConvention nc;
  nc.suffix = "he.net";
  GeoRegex gr;
  gr.regex = *rx::parse("^.+\\.([a-z]{3})\\d+\\.he\\.net$");
  gr.plan.roles = {Role::kIata};
  nc.regexes.push_back(std::move(gr));
  if (with_learned) {
    nc.learned[{geo::HintType::kIata, "ash"}] = find_city(dict, "Ashburn", "us", "va");
  }
  return nc;
}

TEST(Geolocator, LocatesViaDictionary) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  Geolocator g(dict);
  g.add(he_nc(dict, false));
  EXPECT_EQ(g.convention_count(), 1u);
  const auto loc = g.locate("100ge1.core1.lhr2.he.net");
  ASSERT_TRUE(loc.has_value());
  EXPECT_EQ(dict.location(loc->location).city, "London");
  EXPECT_EQ(loc->code, "lhr");
  EXPECT_EQ(loc->role, Role::kIata);
  EXPECT_FALSE(loc->via_learned);
  EXPECT_EQ(loc->suffix, "he.net");
  EXPECT_TRUE(loc->coord.valid());
}

TEST(Geolocator, LearnedCodeOverrides) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  Geolocator g(dict);
  g.add(he_nc(dict, true));
  const auto loc = g.locate("100ge1.core1.ash2.he.net");
  ASSERT_TRUE(loc.has_value());
  EXPECT_EQ(dict.location(loc->location).city, "Ashburn");
  EXPECT_TRUE(loc->via_learned);

  // Without the learned entry, "ash" reads as Nashua.
  Geolocator g2(dict);
  g2.add(he_nc(dict, false));
  const auto loc2 = g2.locate("100ge1.core1.ash2.he.net");
  ASSERT_TRUE(loc2.has_value());
  EXPECT_EQ(dict.location(loc2->location).city, "Nashua");
}

TEST(Geolocator, NoConventionNoResult) {
  Geolocator g(geo::builtin_dictionary());
  EXPECT_FALSE(g.locate("core1.lhr1.unknown.net").has_value());
  EXPECT_EQ(g.convention(""), nullptr);
}

TEST(Geolocator, InvalidHostnameNoResult) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  Geolocator g(dict);
  g.add(he_nc(dict, false));
  EXPECT_FALSE(g.locate("..bad..").has_value());
  EXPECT_FALSE(g.locate("").has_value());
}

TEST(Geolocator, NonMatchingHostnameNoResult) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  Geolocator g(dict);
  g.add(he_nc(dict, false));
  EXPECT_FALSE(g.locate("weird-structure.he.net").has_value());
}

TEST(Geolocator, UnknownCodeNoResult) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  Geolocator g(dict);
  g.add(he_nc(dict, false));
  EXPECT_FALSE(g.locate("c1.core1.qqq1.he.net").has_value());
}

TEST(Geolocator, AnnotationDisambiguates) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  NamingConvention nc;
  nc.suffix = "x.net";
  GeoRegex gr;
  gr.regex = *rx::parse("^([a-z]+)\\d*\\.([a-z]{2})\\.x\\.net$");
  gr.plan.roles = {Role::kCityName, Role::kCountryCode};
  nc.regexes.push_back(std::move(gr));
  Geolocator g(dict);
  g.add(std::move(nc));
  const auto uk = g.locate("london1.uk.x.net");
  ASSERT_TRUE(uk.has_value());
  EXPECT_TRUE(geo::same_country(dict.location(uk->location).country, "uk"));
  const auto ca = g.locate("london1.ca.x.net");
  ASSERT_TRUE(ca.has_value());
  EXPECT_TRUE(geo::same_country(dict.location(ca->location).country, "ca"));
}

TEST(Geolocator, AmbiguityBrokenByFacilityThenPopulation) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  NamingConvention nc;
  nc.suffix = "x.net";
  GeoRegex gr;
  gr.regex = *rx::parse("^([a-z]+)\\d*\\.x\\.net$");
  gr.plan.roles = {Role::kCityName};
  nc.regexes.push_back(std::move(gr));
  Geolocator g(dict);
  g.add(std::move(nc));
  // "london" without a country code: London UK (facility + larger) wins.
  const auto loc = g.locate("london1.x.net");
  ASSERT_TRUE(loc.has_value());
  EXPECT_TRUE(geo::same_country(dict.location(loc->location).country, "uk"));
}

TEST(Geolocator, ReplacesConventionForSameSuffix) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  Geolocator g(dict);
  g.add(he_nc(dict, false));
  g.add(he_nc(dict, true));
  EXPECT_EQ(g.convention_count(), 1u);
  const auto loc = g.locate("c1.core1.ash2.he.net");
  ASSERT_TRUE(loc.has_value());
  EXPECT_TRUE(loc->via_learned);
}

}  // namespace
}  // namespace hoiho::core
