// Unit tests for the restricted regex engine (ast / parser / matcher),
// anchored on the exact regexes the paper prints in figures 7 and 13.
#include <gtest/gtest.h>

#include "regex/ast.h"
#include "regex/matcher.h"
#include "regex/parser.h"

namespace hoiho::rx {
namespace {

Regex parse_ok(std::string_view pattern) {
  std::string error;
  auto rx = parse(pattern, &error);
  EXPECT_TRUE(rx.has_value()) << pattern << ": " << error;
  return rx.value_or(Regex{});
}

// --- construction / printing -------------------------------------------------

TEST(Ast, BuilderProducesPaperRegex) {
  RegexBuilder b;
  b.any_plus().lit(".").begin_group().cls(CharClass::alpha(), Quant::exactly(3)).end_group();
  b.cls(CharClass::digit(), Quant::plus()).lit(".alter.net");
  const Regex rx = std::move(b).build();
  EXPECT_EQ(rx.to_string(), "^.+\\.([a-z]{3})\\d+\\.alter\\.net$");
}

TEST(Ast, QuantPrinting) {
  EXPECT_EQ(Quant::one().to_string(), "");
  EXPECT_EQ(Quant::plus().to_string(), "+");
  EXPECT_EQ(Quant::star().to_string(), "*");
  EXPECT_EQ(Quant::exactly(6).to_string(), "{6}");
  EXPECT_EQ(Quant::plus(true).to_string(), "++");
}

TEST(Ast, CharClassMembership) {
  EXPECT_TRUE(CharClass::alpha().matches('k'));
  EXPECT_FALSE(CharClass::alpha().matches('5'));
  EXPECT_TRUE(CharClass::digit().matches('5'));
  EXPECT_TRUE(CharClass::alnum().matches('5'));
  EXPECT_TRUE(CharClass::alnum().matches('z'));
  EXPECT_FALSE(CharClass::alnum().matches('-'));
  EXPECT_TRUE(CharClass::not_chars(".").matches('-'));
  EXPECT_FALSE(CharClass::not_chars(".").matches('.'));
  EXPECT_TRUE(CharClass::any().matches('.'));
}

// --- parser ------------------------------------------------------------------

TEST(Parser, RoundTripsPaperFigure7) {
  // The six final regexes of paper figure 7 (and fig. 13 #7's set).
  const char* patterns[] = {
      "^.+\\.([a-z]{3})\\d+\\.([a-z]{2})\\.[a-z]{3}\\.zayo\\.com$",
      "^.+\\.([a-z]+)\\d*\\.level3\\.net$",
      "^.+\\.([a-z]{6})\\d+\\.([a-z]{2})\\.[a-z]{2}\\.gin\\.ntt\\.net$",
      "^.+\\.([a-z]{4})\\d+-([a-z]{2})\\.([a-z]{2})\\.windstream\\.net$",
      "^.+\\.([a-z]{6})[a-z\\d]+-[a-z]+\\d+-[^\\.]+\\.alter\\.net$",
      "^[^\\.]+\\.(\\d+[a-z]+)\\.([a-z]{2})\\.[a-z]+\\.comcast\\.net$",
      "^\\d+\\.[a-z]+\\d+\\.([a-z]{6})[a-z\\d]++\\.alter\\.net$",
  };
  for (const char* p : patterns) {
    const Regex rx = parse_ok(p);
    EXPECT_EQ(rx.to_string(), p);
  }
}

TEST(Parser, GroupRanges) {
  const Regex rx = parse_ok("^([a-z]{3})\\d+\\.(\\d+[a-z]+)\\.x\\.net$");
  ASSERT_EQ(rx.groups.size(), 2u);
  EXPECT_EQ(rx.groups[0].first, rx.groups[0].last);     // single node group
  EXPECT_EQ(rx.groups[1].last - rx.groups[1].first, 1u);  // \d+ then [a-z]+
}

TEST(Parser, RejectsMissingAnchors) {
  std::string error;
  EXPECT_FALSE(parse("abc$", &error).has_value());
  EXPECT_FALSE(parse("^abc", &error).has_value());
}

TEST(Parser, RejectsNestedGroups) {
  std::string error;
  EXPECT_FALSE(parse("^(a(b))$", &error).has_value());
  EXPECT_NE(error.find("nested"), std::string::npos);
}

TEST(Parser, RejectsUnbalancedGroups) {
  EXPECT_FALSE(parse("^(abc$", nullptr).has_value());
  EXPECT_FALSE(parse("^abc)$", nullptr).has_value());
  EXPECT_FALSE(parse("^()$", nullptr).has_value());
}

TEST(Parser, RejectsAlternation) {
  EXPECT_FALSE(parse("^a|b$", nullptr).has_value());
}

TEST(Parser, RejectsDanglingQuantifier) {
  EXPECT_FALSE(parse("^+a$", nullptr).has_value());
}

TEST(Parser, RejectsRangeRepetition) {
  EXPECT_FALSE(parse("^[a-z]{2,3}$", nullptr).has_value());
}

TEST(Parser, AcceptsTrailingDashInClass) {
  const Regex rx = parse_ok("^[a-z-]+$");
  EXPECT_TRUE(match(rx, "ab-cd").matched);
}

TEST(Parser, PossessiveQuantifiers) {
  const Regex rx = parse_ok("^[^-]++x$");
  ASSERT_EQ(rx.nodes.size(), 2u);
  EXPECT_TRUE(rx.nodes[0].quant.possessive);
}

TEST(Parser, QuantifiedLiteralChar) {
  const Regex rx = parse_ok("^ab+c$");
  EXPECT_TRUE(match(rx, "abbbc").matched);
  EXPECT_FALSE(match(rx, "ac").matched);
}

// --- matcher -----------------------------------------------------------------

TEST(Matcher, ZayoExtraction) {
  // Paper fig. 6a / 7a.
  const Regex rx = parse_ok("^.+\\.([a-z]{3})\\d+\\.([a-z]{2})\\.[a-z]{3}\\.zayo\\.com$");
  const auto caps = capture_strings(rx, "zayo-ntt.mpr1.lhr15.uk.zip.zayo.com");
  ASSERT_EQ(caps.size(), 2u);
  EXPECT_EQ(caps[0], "lhr");
  EXPECT_EQ(caps[1], "uk");
}

TEST(Matcher, NttClliExtraction) {
  // Paper fig. 6c / 7c.
  const Regex rx = parse_ok("^.+\\.([a-z]{6})\\d+\\.([a-z]{2})\\.[a-z]{2}\\.gin\\.ntt\\.net$");
  const auto caps = capture_strings(rx, "xe-0-0-28-0.a02.snjsca04.us.ce.gin.ntt.net");
  ASSERT_EQ(caps.size(), 2u);
  EXPECT_EQ(caps[0], "snjsca");
  EXPECT_EQ(caps[1], "us");
}

TEST(Matcher, WindstreamSplitClli) {
  // Paper fig. 6d-e / 7d: 4+2 split CLLI plus a country code.
  const Regex rx = parse_ok("^.+\\.([a-z]{4})\\d+-([a-z]{2})\\.([a-z]{2})\\.windstream\\.net$");
  const auto caps = capture_strings(rx, "ae1-0.rcmd01-va.us.windstream.net");
  ASSERT_EQ(caps.size(), 3u);
  EXPECT_EQ(caps[0], "rcmd");
  EXPECT_EQ(caps[1], "va");
  EXPECT_EQ(caps[2], "us");
}

TEST(Matcher, ComcastFacility) {
  // Paper fig. 6f / 7f: a street address with leading digits.
  const Regex rx = parse_ok("^[^\\.]+\\.(\\d+[a-z]+)\\.([a-z]{2})\\.[a-z]+\\.comcast\\.net$");
  const auto caps = capture_strings(rx, "ae-5.1118thave.ny.ibone.comcast.net");
  ASSERT_EQ(caps.size(), 2u);
  EXPECT_EQ(caps[0], "1118thave");
  EXPECT_EQ(caps[1], "ny");
}

TEST(Matcher, AnchorsAreStrict) {
  const Regex rx = parse_ok("^abc$");
  EXPECT_TRUE(match(rx, "abc").matched);
  EXPECT_FALSE(match(rx, "xabc").matched);
  EXPECT_FALSE(match(rx, "abcx").matched);
  EXPECT_FALSE(match(rx, "").matched);
}

TEST(Matcher, StarAllowsAbsence) {
  // Phase-2 merged regex (fig. 13 #5): \d* matches with and without digits.
  const Regex rx = parse_ok("^([a-z]+)\\d*\\.([a-z]{2})\\.alter\\.net$");
  EXPECT_EQ(capture_strings(rx, "stuttgart9.de.alter.net")[0], "stuttgart");
  EXPECT_EQ(capture_strings(rx, "frankfurt.de.alter.net")[0], "frankfurt");
}

TEST(Matcher, GreedyBacktracking) {
  const Regex rx = parse_ok("^([a-z]+)x$");
  const auto caps = capture_strings(rx, "aaax");
  ASSERT_EQ(caps.size(), 1u);
  EXPECT_EQ(caps[0], "aaa");
}

TEST(Matcher, PossessiveRefusesToBacktrack) {
  // [a-z]++x can never match "abcx" in one token... it can: 'x' is alpha, so
  // the possessive run eats it and the literal fails. Use a digit tail to
  // show the difference.
  const Regex greedy = parse_ok("^[a-z]+a$");
  EXPECT_TRUE(match(greedy, "bba").matched);
  const Regex possessive = parse_ok("^[a-z]++a$");
  EXPECT_FALSE(match(possessive, "bba").matched);  // ++ consumed the final 'a'
}

TEST(Matcher, ExactWidthCounts) {
  const Regex rx = parse_ok("^[a-z]{6}$");
  EXPECT_TRUE(match(rx, "asbnva").matched);
  EXPECT_FALSE(match(rx, "asbnv").matched);
  EXPECT_FALSE(match(rx, "asbnvax").matched);
}

TEST(Matcher, DotPlusSpansDots) {
  const Regex rx = parse_ok("^.+\\.([a-z]{3})\\d+\\.alter\\.net$");
  const auto caps = capture_strings(rx, "0.xe-10-0-0.gw1.sfo16.alter.net");
  ASSERT_EQ(caps.size(), 1u);
  EXPECT_EQ(caps[0], "sfo");
}

TEST(Matcher, CaptureOfMultiNodeGroup) {
  const Regex rx = parse_ok("^(\\d+[a-z]+)$");
  const auto caps = capture_strings(rx, "529bryant");
  ASSERT_EQ(caps.size(), 1u);
  EXPECT_EQ(caps[0], "529bryant");
}

TEST(Matcher, NodeSpans) {
  const Regex rx = parse_ok("^[^\\.]+\\.([a-z]{3})\\d+\\.x\\.net$");
  std::vector<Capture> spans;
  const auto m = match_with_spans(rx, "gw1.lhr15.x.net", spans);
  ASSERT_TRUE(m.matched);
  ASSERT_EQ(spans.size(), rx.nodes.size());
  EXPECT_EQ(spans[0].view("gw1.lhr15.x.net"), "gw1");   // [^\.]+
  // Find the digit node's span.
  bool found_digits = false;
  for (std::size_t i = 0; i < rx.nodes.size(); ++i) {
    if (rx.nodes[i].kind == Node::Kind::kClass && rx.nodes[i].cls == CharClass::digit()) {
      EXPECT_EQ(spans[i].view("gw1.lhr15.x.net"), "15");
      found_digits = true;
    }
  }
  EXPECT_TRUE(found_digits);
}

TEST(Matcher, NodeSpansClearedOnFailure) {
  const Regex rx = parse_ok("^abc$");
  std::vector<Capture> spans;
  EXPECT_FALSE(match_with_spans(rx, "zzz", spans).matched);
  EXPECT_TRUE(spans.empty());
}

TEST(Matcher, PathologicalInputTerminates) {
  // Many unbounded classes + a final mismatch: the step bound must fire
  // rather than hang.
  const Regex rx = parse_ok("^[^-]+[^-]+[^-]+[^-]+[^-]+[^-]+x$");
  const std::string subject(120, 'a');
  EXPECT_FALSE(match(rx, subject).matched);
}

TEST(Matcher, CaptureViewsPointIntoSubject) {
  const Regex rx = parse_ok("^([a-z]+)\\.net$");
  const std::string subject = "hoiho.net";
  const MatchResult m = match(rx, subject);
  ASSERT_TRUE(m.matched);
  ASSERT_EQ(m.captures.size(), 1u);
  EXPECT_EQ(m.captures[0].begin, 0u);
  EXPECT_EQ(m.captures[0].end, 5u);
}

TEST(Matcher, EmptyCaptureListWhenNoGroups) {
  const Regex rx = parse_ok("^[a-z]+\\.net$");
  const MatchResult m = match(rx, "hoiho.net");
  EXPECT_TRUE(m.matched);
  EXPECT_TRUE(m.captures.empty());
}

TEST(Matcher, DropStyleRegexMissesExtraSegments) {
  // Paper fig. 2: DRoP's rule expects two prefix segments, so it misses
  // hostnames with more structure.
  const Regex rx = parse_ok("^([a-z]+)\\d*\\.[^\\.]+\\.360\\.net$");
  EXPECT_TRUE(match(rx, "sjc1.ge2-3.360.net").matched);
  EXPECT_FALSE(match(rx, "0.ge-0-0-0.sjc1.ge2-3.360.net").matched);
}

}  // namespace
}  // namespace hoiho::rx
