// Concurrency test for the serving read path: 8 threads hammer
// Geolocator::locate on the current ModelStore snapshot while the main
// thread keeps hot-swapping new snapshots in. Run under TSan in CI — the
// invariants are (a) no data race between locate() and a swap, (b) a
// pinned snapshot stays valid for as long as a reader holds it, and (c)
// every lookup is answered consistently with *some* installed model.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "regex/parser.h"
#include "serve/model_store.h"

namespace hoiho::serve {
namespace {

std::vector<core::StoredConvention> iata_model(const std::string& suffix) {
  std::vector<core::StoredConvention> out(1);
  out[0].nc.suffix = suffix;
  out[0].cls = core::NcClass::kGood;
  core::GeoRegex gr;
  // Dots in the suffix must be escaped inside the pattern.
  std::string pattern = "^([a-z]{3})\\d+\\.";
  for (const char c : suffix) {
    if (c == '.') pattern += "\\.";
    else pattern += c;
  }
  pattern += "$";
  gr.regex = *rx::parse(pattern);
  gr.plan.roles = {core::Role::kIata};
  out[0].nc.regexes.push_back(std::move(gr));
  return out;
}

TEST(GeolocateConcurrent, EightReadersThroughHotSwaps) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  ModelStore store(dict);
  // Generation alternates between two one-convention models; a hostname
  // under each suffix hits iff the matching model is installed.
  const auto model_a = iata_model("he.net");
  const auto model_b = iata_model("zayo.com");
  store.install(model_a);

  constexpr int kReaders = 8;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> lookups{0}, hits{0}, inconsistent{0};

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        // Pin one snapshot and run a burst against it, the way a server
        // worker handles a batch.
        const auto snap = store.current();
        const bool is_a = snap->geolocator.convention("he.net") != nullptr;
        const bool is_b = snap->geolocator.convention("zayo.com") != nullptr;
        if (is_a == is_b) {
          inconsistent.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        for (int i = 0; i < 64; ++i) {
          const auto a = snap->geolocator.locate("lhr1.he.net");
          const auto b = snap->geolocator.locate("lhr1.zayo.com");
          lookups.fetch_add(2, std::memory_order_relaxed);
          if (a) hits.fetch_add(1, std::memory_order_relaxed);
          if (b) hits.fetch_add(1, std::memory_order_relaxed);
          // Within one snapshot, exactly one of the two suffixes answers.
          if (a.has_value() != is_a || b.has_value() != is_b)
            inconsistent.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  // Swap models as fast as we can for a bounded number of generations, then
  // keep serving until every reader got scheduled at least once (on a loaded
  // single-CPU box the swap loop can otherwise finish before any reader ran
  // a single burst).
  for (int g = 0; g < 200; ++g) store.install(g % 2 == 0 ? model_b : model_a);
  while (lookups.load(std::memory_order_relaxed) < kReaders * 128u)
    std::this_thread::yield();
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(inconsistent.load(), 0u);
  EXPECT_GT(lookups.load(), 0u);
  EXPECT_GT(hits.load(), 0u);
  EXPECT_GE(store.generation(), 201u);
}

}  // namespace
}  // namespace hoiho::serve
