// Unit tests for measure/consistency_cache.h: hit/miss accounting, slack
// keying, prefilter soundness (verdicts identical to the uncached scan),
// and the bypass paths.
#include <gtest/gtest.h>

#include "measure/consistency_cache.h"
#include "sim/probing.h"

namespace hoiho::measure {
namespace {

const geo::Coordinate kDc{38.91, -77.04};       // Washington DC
const geo::Coordinate kAshburn{39.04, -77.49};  // ~35 km from DC
const geo::Coordinate kNashua{42.77, -71.47};   // ~620 km from DC
const geo::Coordinate kLondon{51.51, -0.13};

Measurements one_vp_setup(double rtt_ms) {
  Measurements meas({VantagePoint{"was", "us", kDc}}, 1);
  meas.pings.record(0, 0, rtt_ms);
  return meas;
}

TEST(ConsistencyCache, FirstQueryMissesSecondHits) {
  const Measurements meas = one_vp_setup(1.0);
  ConsistencyCache cache(meas, 4);
  EXPECT_TRUE(cache.consistent(0, 2, kAshburn));
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_TRUE(cache.consistent(0, 2, kAshburn));
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_DOUBLE_EQ(cache.stats().hit_rate(), 0.5);
}

TEST(ConsistencyCache, CachesNegativeVerdicts) {
  const Measurements meas = one_vp_setup(3.0);  // Nashua needs ~6.2 ms
  ConsistencyCache cache(meas, 4);
  EXPECT_FALSE(cache.consistent(0, 1, kNashua));
  EXPECT_FALSE(cache.consistent(0, 1, kNashua));
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(ConsistencyCache, DistinctLocationsAreDistinctCells) {
  const Measurements meas = one_vp_setup(3.0);
  ConsistencyCache cache(meas, 4);
  EXPECT_TRUE(cache.consistent(0, 0, kAshburn));
  EXPECT_FALSE(cache.consistent(0, 1, kNashua));
  EXPECT_TRUE(cache.consistent(0, 0, kAshburn));
  EXPECT_FALSE(cache.consistent(0, 1, kNashua));
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_EQ(cache.stats().hits, 2u);
}

TEST(ConsistencyCache, MismatchedSlackBypassesTable) {
  const Measurements meas = one_vp_setup(3.0);
  ConsistencyCache cache(meas, 4, /*slack_ms=*/0.0);
  EXPECT_FALSE(cache.consistent(0, 1, kNashua));  // miss at slack 0
  // Slack 5 makes Nashua feasible; this must not read the slack-0 cell.
  EXPECT_TRUE(cache.consistent(0, 1, kNashua, 5.0));
  EXPECT_EQ(cache.stats().bypasses, 1u);
  // ...and must not have overwritten it either.
  EXPECT_FALSE(cache.consistent(0, 1, kNashua));
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(ConsistencyCache, MismatchedGridIsIgnoredNotTrusted) {
  const Measurements meas = one_vp_setup(3.0);
  const std::vector<geo::Coordinate> coords = {kAshburn, kNashua};
  // A grid built for a different (two-VP) campaign: its cells mean nothing
  // for `meas`, so the cache must fall back to lazy per-location haversines
  // rather than read garbage expected RTTs.
  const std::vector<VantagePoint> other_vps = {VantagePoint{"was", "us", kDc},
                                               VantagePoint{"lhr", "uk", kLondon}};
  const ExpectedRttGrid grid(coords, other_vps);
  ConsistencyCache with(meas, 2, 0.0, true, &grid);
  ConsistencyCache without(meas, 2, 0.0, true, nullptr);
  EXPECT_TRUE(with.consistent(0, 0, kAshburn));
  EXPECT_FALSE(with.consistent(0, 1, kNashua));
  EXPECT_EQ(with.consistent(0, 0, kAshburn), without.consistent(0, 0, kAshburn));
  EXPECT_EQ(with.consistent(0, 1, kNashua), without.consistent(0, 1, kNashua));
}

TEST(ConsistencyCache, OutOfRangeIdsBypass) {
  const Measurements meas = one_vp_setup(1.0);
  ConsistencyCache cache(meas, 4);
  // Location id beyond the dictionary size and router beyond the matrix.
  EXPECT_TRUE(cache.consistent(0, 9, kAshburn));
  EXPECT_EQ(cache.stats().bypasses, 1u);
  EXPECT_EQ(cache.stats().misses, 0u);
}

TEST(ConsistencyCache, InvalidCoordinateIsCachedFalse) {
  const Measurements meas = one_vp_setup(1.0);
  ConsistencyCache cache(meas, 4);
  EXPECT_FALSE(cache.consistent(0, 3, geo::Coordinate::invalid()));
  EXPECT_FALSE(cache.consistent(0, 3, geo::Coordinate::invalid()));
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(ConsistencyCache, UnmeasuredRouterVacuouslyConsistent) {
  Measurements meas({VantagePoint{"was", "us", kDc}}, 2);
  meas.pings.record(0, 0, 1.0);  // router 1 has no samples
  ConsistencyCache cache(meas, 4);
  EXPECT_TRUE(cache.consistent(1, 0, kLondon));
  EXPECT_EQ(cache.stats().prefilter_rejects, 0u);
}

TEST(ConsistencyCache, PrefilterRejectsFarCandidates) {
  const Measurements meas = one_vp_setup(1.0);  // feasible radius ~100 km
  ConsistencyCache cache(meas, 4);
  EXPECT_FALSE(cache.consistent(0, 0, kLondon));
  EXPECT_EQ(cache.stats().prefilter_rejects, 1u);
  EXPECT_TRUE(cache.consistent(0, 1, kAshburn));  // near: full scan, no reject
  EXPECT_EQ(cache.stats().prefilter_rejects, 1u);
}

TEST(ConsistencyCache, VerdictsMatchUncachedScanOnSimWorld) {
  // Property check over a realistic multi-VP campaign: for every (router,
  // location) pair, cached verdicts (prefilter on and off) must equal the
  // raw rtt_consistent() scan.
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  sim::WorldConfig wc;
  wc.seed = 5;
  wc.operators = 4;
  const sim::World world = sim::generate_world(dict, wc);
  const Measurements meas = sim::probe_pings(world, {});

  ConsistencyCache with(meas, dict.size(), 0.0, /*prefilter=*/true);
  ConsistencyCache without(meas, dict.size(), 0.0, /*prefilter=*/false);
  const std::size_t routers = std::min<std::size_t>(meas.pings.router_count(), 40);
  for (topo::RouterId r = 0; r < routers; ++r) {
    for (geo::LocationId id = 0; id < dict.size(); ++id) {
      const geo::Coordinate& coord = dict.location(id).coord;
      const bool expected = rtt_consistent(meas.pings, meas.vps, r, coord, 0.0);
      ASSERT_EQ(with.consistent(r, id, coord), expected) << "r=" << r << " loc=" << id;
      ASSERT_EQ(without.consistent(r, id, coord), expected) << "r=" << r << " loc=" << id;
      // Second pass must hit and agree.
      ASSERT_EQ(with.consistent(r, id, coord), expected);
    }
  }
  EXPECT_GT(with.stats().prefilter_rejects, 0u);
  EXPECT_EQ(without.stats().prefilter_rejects, 0u);
  EXPECT_GT(with.stats().hits, 0u);
}

}  // namespace
}  // namespace hoiho::measure
