// Unit tests for topo/topology.h and topo/itdk_io.h.
#include <gtest/gtest.h>

#include <sstream>

#include "topo/itdk_io.h"
#include "topo/topology.h"

namespace hoiho::topo {
namespace {

Topology sample() {
  Topology topo;
  const RouterId r0 = topo.add_router(7);
  topo.add_interface(r0, "10.0.0.1", "core1.ash1.he.net");
  topo.add_interface(r0, "10.0.0.2", "core1-b.ash1.he.net");
  const RouterId r1 = topo.add_router();
  topo.add_interface(r1, "10.0.0.3", "gw1.sfo16.alter.net");
  const RouterId r2 = topo.add_router();
  topo.add_interface(r2, "10.0.0.4", {});  // no PTR
  return topo;
}

TEST(Topology, AddAndQuery) {
  const Topology topo = sample();
  EXPECT_EQ(topo.size(), 3u);
  EXPECT_EQ(topo.router(0).true_location, 7u);
  EXPECT_EQ(topo.router(1).true_location, geo::kInvalidLocation);
  EXPECT_EQ(topo.router(0).interfaces.size(), 2u);
  EXPECT_TRUE(topo.router(0).has_hostname());
  EXPECT_FALSE(topo.router(2).has_hostname());
  EXPECT_EQ(topo.count_with_hostname(), 2u);
}

TEST(Topology, InvalidHostnameTreatedAsAbsent) {
  Topology topo;
  const RouterId r = topo.add_router();
  EXPECT_FALSE(topo.add_interface(r, "10.0.0.1", "..bad.."));
  EXPECT_FALSE(topo.router(r).interfaces[0].hostname.has_value());
  EXPECT_TRUE(topo.add_interface(r, "10.0.0.2", "ok.he.net"));
}

TEST(Topology, GroupBySuffix) {
  const Topology topo = sample();
  const auto groups = topo.group_by_suffix();
  ASSERT_EQ(groups.size(), 2u);  // sorted: alter.net, he.net
  EXPECT_EQ(groups[0].suffix, "alter.net");
  EXPECT_EQ(groups[0].hostnames.size(), 1u);
  EXPECT_EQ(groups[1].suffix, "he.net");
  EXPECT_EQ(groups[1].hostnames.size(), 2u);
  EXPECT_EQ(groups[1].hostnames[0].router, 0u);
}

TEST(Topology, GroupBySuffixMinimum) {
  const Topology topo = sample();
  const auto groups = topo.group_by_suffix(2);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].suffix, "he.net");
}

TEST(ItdkIo, WriteNodesFormat) {
  std::ostringstream out;
  write_nodes(out, sample());
  EXPECT_NE(out.str().find("node N0: 10.0.0.1 10.0.0.2"), std::string::npos);
  EXPECT_NE(out.str().find("node N2: 10.0.0.4"), std::string::npos);
}

TEST(ItdkIo, RoundTrip) {
  const Topology original = sample();
  std::ostringstream nodes_out, names_out;
  write_nodes(nodes_out, original);
  write_names(names_out, original);

  std::istringstream nodes_in(nodes_out.str()), names_in(names_out.str());
  std::string error;
  const auto loaded = read_itdk(nodes_in, &names_in, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->size(), original.size());
  EXPECT_EQ(loaded->count_with_hostname(), original.count_with_hostname());
  ASSERT_TRUE(loaded->router(0).interfaces[0].hostname.has_value());
  EXPECT_EQ(loaded->router(0).interfaces[0].hostname->full, "core1.ash1.he.net");
}

TEST(ItdkIo, NodesWithoutNames) {
  std::istringstream nodes_in("node N0: 1.2.3.4 5.6.7.8\nnode N1: 9.9.9.9\n");
  const auto loaded = read_itdk(nodes_in, nullptr);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->size(), 2u);
  EXPECT_EQ(loaded->count_with_hostname(), 0u);
}

TEST(ItdkIo, RejectsMalformedNodeLine) {
  std::istringstream nodes_in("nodule N0: 1.2.3.4\n");
  std::string error;
  EXPECT_FALSE(read_itdk(nodes_in, nullptr, &error).has_value());
  EXPECT_NE(error.find("line 1"), std::string::npos);
}

TEST(ItdkIo, UnknownAddressesInNamesIgnored) {
  std::istringstream nodes_in("node N0: 1.2.3.4\n");
  std::istringstream names_in("8.8.8.8 dns.google\n1.2.3.4 r1.he.net\n");
  const auto loaded = read_itdk(nodes_in, &names_in);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->count_with_hostname(), 1u);
}

}  // namespace
}  // namespace hoiho::topo
