// Unit tests for util/csv.h.
#include "util/csv.h"

#include <gtest/gtest.h>

#include <sstream>

namespace hoiho::util {
namespace {

TEST(CsvParse, SimpleFields) {
  const CsvRow row = parse_csv_line("a,b,c");
  ASSERT_EQ(row.size(), 3u);
  EXPECT_EQ(row[0], "a");
  EXPECT_EQ(row[2], "c");
}

TEST(CsvParse, EmptyFields) {
  const CsvRow row = parse_csv_line("a,,c,");
  ASSERT_EQ(row.size(), 4u);
  EXPECT_EQ(row[1], "");
  EXPECT_EQ(row[3], "");
}

TEST(CsvParse, QuotedCommas) {
  const CsvRow row = parse_csv_line("\"New York, NY\",us");
  ASSERT_EQ(row.size(), 2u);
  EXPECT_EQ(row[0], "New York, NY");
}

TEST(CsvParse, EscapedQuotes) {
  const CsvRow row = parse_csv_line("\"say \"\"hi\"\"\",x");
  ASSERT_EQ(row.size(), 2u);
  EXPECT_EQ(row[0], "say \"hi\"");
}

TEST(CsvParse, StripsCarriageReturn) {
  const CsvRow row = parse_csv_line("a,b\r");
  ASSERT_EQ(row.size(), 2u);
  EXPECT_EQ(row[1], "b");
}

TEST(CsvRead, SkipsCommentsAndBlanks) {
  std::istringstream in("# header\n\na,b\nc,d\n");
  const auto rows = read_csv(in);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0], "a");
  EXPECT_EQ(rows[1][1], "d");
}

TEST(CsvWrite, QuotesWhenNeeded) {
  std::ostringstream out;
  write_csv_row(out, {"plain", "with,comma", "with\"quote"});
  EXPECT_EQ(out.str(), "plain,\"with,comma\",\"with\"\"quote\"\n");
}

TEST(CsvRoundTrip, WriteThenParse) {
  std::ostringstream out;
  const CsvRow row = {"a", "b,c", "d\"e", ""};
  write_csv_row(out, row);
  std::string line = out.str();
  line.pop_back();  // trailing newline
  EXPECT_EQ(parse_csv_line(line), row);
}

}  // namespace
}  // namespace hoiho::util
