// util::failpoint — spec parsing, firing semantics, env configuration, and
// the zero-cost-when-disabled contract the hot paths rely on.

#include "util/failpoint.h"

#include <gtest/gtest.h>

#include <cerrno>
#include <cstdlib>
#include <vector>

namespace fp = hoiho::util::failpoint;

namespace {

class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override { fp::reset(); }
  void TearDown() override { fp::reset(); }
};

TEST_F(FailpointTest, DisabledByDefault) {
  EXPECT_FALSE(fp::any_active());
  const auto f = fp::hit("anything");
  EXPECT_EQ(f.kind, fp::Kind::kOff);
  EXPECT_FALSE(static_cast<bool>(f));
  EXPECT_EQ(fp::total_fired(), 0u);
}

TEST_F(FailpointTest, ErrorKindCarriesErrno) {
  ASSERT_TRUE(fp::configure("io.read", "error:ECONNRESET"));
  EXPECT_TRUE(fp::any_active());
  const auto f = fp::hit("io.read");
  EXPECT_EQ(f.kind, fp::Kind::kError);
  EXPECT_EQ(f.err, ECONNRESET);
  EXPECT_TRUE(static_cast<bool>(f));
  EXPECT_EQ(fp::fired("io.read"), 1u);
}

TEST_F(FailpointTest, ErrorDefaultsToEioAndAcceptsDecimal) {
  ASSERT_TRUE(fp::configure("a", "error"));
  EXPECT_EQ(fp::hit("a").err, EIO);
  ASSERT_TRUE(fp::configure("b", "error:13"));
  EXPECT_EQ(fp::hit("b").err, 13);
}

TEST_F(FailpointTest, OtherSitesUnaffected) {
  ASSERT_TRUE(fp::configure("armed", "short"));
  EXPECT_EQ(fp::hit("not.armed").kind, fp::Kind::kOff);
  EXPECT_EQ(fp::hit("armed").kind, fp::Kind::kShort);
}

TEST_F(FailpointTest, TimesLimitsFireCount) {
  ASSERT_TRUE(fp::configure("s", "eintr,times=2"));
  EXPECT_EQ(fp::hit("s").kind, fp::Kind::kEintr);
  EXPECT_EQ(fp::hit("s").kind, fp::Kind::kEintr);
  EXPECT_EQ(fp::hit("s").kind, fp::Kind::kOff);
  EXPECT_EQ(fp::fired("s"), 2u);
}

TEST_F(FailpointTest, EveryGatesEligibility) {
  ASSERT_TRUE(fp::configure("s", "short,every=3"));
  int fired = 0;
  for (int i = 0; i < 9; ++i)
    if (fp::hit("s").kind == fp::Kind::kShort) ++fired;
  EXPECT_EQ(fired, 3);
}

TEST_F(FailpointTest, ProbabilityZeroNeverFires) {
  ASSERT_TRUE(fp::configure("s", "error,p=0"));
  for (int i = 0; i < 100; ++i) EXPECT_EQ(fp::hit("s").kind, fp::Kind::kOff);
  EXPECT_EQ(fp::fired("s"), 0u);
}

TEST_F(FailpointTest, ProbabilityIsDeterministicPerSite) {
  ASSERT_TRUE(fp::configure("s", "short,p=0.5"));
  std::vector<fp::Kind> first;
  for (int i = 0; i < 32; ++i) first.push_back(fp::hit("s").kind);
  fp::reset();
  ASSERT_TRUE(fp::configure("s", "short,p=0.5"));
  for (int i = 0; i < 32; ++i) EXPECT_EQ(fp::hit("s").kind, first[i]) << i;
}

TEST_F(FailpointTest, OffDisarmsAndResetClearsEverything) {
  ASSERT_TRUE(fp::configure("s", "short"));
  EXPECT_NE(fp::hit("s").kind, fp::Kind::kOff);
  ASSERT_TRUE(fp::configure("s", "off"));
  EXPECT_FALSE(fp::any_active());
  EXPECT_EQ(fp::hit("s").kind, fp::Kind::kOff);
  ASSERT_TRUE(fp::configure("s", "short"));
  fp::reset();
  EXPECT_FALSE(fp::any_active());
  EXPECT_EQ(fp::total_fired(), 0u);
}

TEST_F(FailpointTest, DelayIsNotTreatedAsFailure) {
  ASSERT_TRUE(fp::configure("s", "delay:1"));
  const auto f = fp::hit("s");
  EXPECT_EQ(f.kind, fp::Kind::kDelay);
  EXPECT_FALSE(static_cast<bool>(f));  // call sites proceed after the sleep
}

TEST_F(FailpointTest, MalformedSpecsRejected) {
  std::string error;
  EXPECT_FALSE(fp::configure("s", "", &error));
  EXPECT_FALSE(fp::configure("s", "explode", &error));
  EXPECT_FALSE(fp::configure("s", "short,p=nan", &error));
  EXPECT_FALSE(fp::configure("s", "short,bogus=1", &error));
  EXPECT_FALSE(fp::configure("s", "error:EBOGUS", &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(fp::any_active());
}

TEST_F(FailpointTest, ConfigureFromEnv) {
  ::setenv("HOIHO_FP_TEST", "a=short;b=error:EPIPE,times=1", 1);
  EXPECT_EQ(fp::configure_from_env("HOIHO_FP_TEST"), 2);
  EXPECT_EQ(fp::hit("a").kind, fp::Kind::kShort);
  EXPECT_EQ(fp::hit("b").err, EPIPE);

  ::setenv("HOIHO_FP_TEST", "not-a-spec", 1);
  std::string error;
  EXPECT_EQ(fp::configure_from_env("HOIHO_FP_TEST", &error), -1);
  EXPECT_FALSE(error.empty());

  ::unsetenv("HOIHO_FP_TEST");
  EXPECT_EQ(fp::configure_from_env("HOIHO_FP_TEST"), 0);
}

}  // namespace
