// Unit tests for util/thread_pool.h.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "util/thread_pool.h"

namespace hoiho::util {
namespace {

TEST(ThreadPool, ResolveMapsZeroToHardware) {
  EXPECT_GE(ThreadPool::resolve(0), 1u);
  EXPECT_EQ(ThreadPool::resolve(1), 1u);
  EXPECT_EQ(ThreadPool::resolve(7), 7u);
}

TEST(ThreadPool, RunsEverySubmittedTask) {
  std::atomic<int> count{0};
  ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4u);
  for (int i = 0; i < 1000; ++i)
    pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPool, ReusableAcrossBatches) {
  std::atomic<int> count{0};
  ThreadPool pool(2);
  for (int batch = 0; batch < 3; ++batch) {
    for (int i = 0; i < 50; ++i)
      pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
    pool.wait_idle();
    EXPECT_EQ(count.load(), 50 * (batch + 1));
  }
}

TEST(ThreadPool, BoundedQueueAppliesBackpressure) {
  // Far more tasks than queue slots: submit() must block rather than drop.
  std::atomic<int> count{0};
  ThreadPool pool(2, /*queue_capacity=*/4);
  for (int i = 0; i < 200; ++i) {
    pool.submit([&count] {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
      count.fetch_add(1, std::memory_order_relaxed);
    });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPool, SingleWorkerNeverOverlapsTasks) {
  std::atomic<int> running{0};
  std::atomic<int> max_running{0};
  ThreadPool pool(1);
  for (int i = 0; i < 100; ++i) {
    pool.submit([&] {
      const int now = running.fetch_add(1) + 1;
      int prev = max_running.load();
      while (now > prev && !max_running.compare_exchange_weak(prev, now)) {
      }
      running.fetch_sub(1);
    });
  }
  pool.wait_idle();
  EXPECT_EQ(max_running.load(), 1);
}

TEST(ThreadPool, DestructorDrainsQueuedTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 100; ++i)
      pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
    // No wait_idle(): destruction must still run everything queued.
  }
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.wait_idle();  // nothing submitted
  SUCCEED();
}

}  // namespace
}  // namespace hoiho::util
