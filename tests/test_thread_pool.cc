// Unit tests for util/thread_pool.h.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "util/thread_pool.h"

namespace hoiho::util {
namespace {

TEST(ThreadPool, ResolveMapsZeroToHardware) {
  EXPECT_GE(ThreadPool::resolve(0), 1u);
  EXPECT_EQ(ThreadPool::resolve(1), 1u);
  EXPECT_EQ(ThreadPool::resolve(7), 7u);
}

TEST(ThreadPool, RunsEverySubmittedTask) {
  std::atomic<int> count{0};
  ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4u);
  for (int i = 0; i < 1000; ++i)
    pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPool, ReusableAcrossBatches) {
  std::atomic<int> count{0};
  ThreadPool pool(2);
  for (int batch = 0; batch < 3; ++batch) {
    for (int i = 0; i < 50; ++i)
      pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
    pool.wait_idle();
    EXPECT_EQ(count.load(), 50 * (batch + 1));
  }
}

TEST(ThreadPool, BoundedQueueAppliesBackpressure) {
  // Far more tasks than queue slots: submit() must block rather than drop.
  std::atomic<int> count{0};
  ThreadPool pool(2, /*queue_capacity=*/4);
  for (int i = 0; i < 200; ++i) {
    pool.submit([&count] {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
      count.fetch_add(1, std::memory_order_relaxed);
    });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPool, SingleWorkerNeverOverlapsTasks) {
  std::atomic<int> running{0};
  std::atomic<int> max_running{0};
  ThreadPool pool(1);
  for (int i = 0; i < 100; ++i) {
    pool.submit([&] {
      const int now = running.fetch_add(1) + 1;
      int prev = max_running.load();
      while (now > prev && !max_running.compare_exchange_weak(prev, now)) {
      }
      running.fetch_sub(1);
    });
  }
  pool.wait_idle();
  EXPECT_EQ(max_running.load(), 1);
}

TEST(ThreadPool, DestructorDrainsQueuedTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 100; ++i)
      pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
    // No wait_idle(): destruction must still run everything queued.
  }
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.wait_idle();  // nothing submitted
  SUCCEED();
}

TEST(ThreadPool, StatsCarryPerWorkerExecutedCounts) {
  ThreadPool pool(3);
  for (int i = 0; i < 60; ++i) pool.submit([] {});
  pool.wait_idle();
  const ThreadPool::Stats stats = pool.stats();
  EXPECT_EQ(stats.submitted, 60u);
  EXPECT_EQ(stats.executed, 60u);
  ASSERT_EQ(stats.workers.size(), 3u);
  std::uint64_t sum = 0;
  for (const WorkerStats& w : stats.workers) {
    sum += w.executed;
    EXPECT_EQ(w.stolen, 0u);  // the shared-queue pool never steals
    EXPECT_EQ(w.steal_failures, 0u);
  }
  EXPECT_EQ(sum, 60u);
}

TEST(WorkStealingPool, SeedRunsEveryTask) {
  std::atomic<int> count{0};
  WorkStealingPool pool(4);
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 1000; ++i)
    tasks.push_back([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  pool.seed(std::move(tasks));
  pool.wait_idle();
  EXPECT_EQ(count.load(), 1000);
  const WorkStealingPool::Stats stats = pool.stats();
  EXPECT_EQ(stats.submitted, 1000u);
  EXPECT_EQ(stats.executed, 1000u);
  ASSERT_EQ(stats.workers.size(), 4u);
  std::uint64_t sum = 0;
  for (const WorkerStats& w : stats.workers) sum += w.executed;
  EXPECT_EQ(sum, 1000u);
}

TEST(WorkStealingPool, ReusableAcrossBatches) {
  std::atomic<int> count{0};
  WorkStealingPool pool(2);
  for (int batch = 0; batch < 3; ++batch) {
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 50; ++i)
      tasks.push_back([&count] { count.fetch_add(1, std::memory_order_relaxed); });
    pool.seed(std::move(tasks));
    pool.wait_idle();
    EXPECT_EQ(count.load(), 50 * (batch + 1));
  }
}

TEST(WorkStealingPool, SubmitLandsOnShallowestDeque) {
  std::atomic<int> count{0};
  WorkStealingPool pool(3);
  for (int i = 0; i < 200; ++i)
    pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 200);
  EXPECT_EQ(pool.stats().executed, 200u);
}

TEST(WorkStealingPool, StealsUnderSkew) {
  // One worker's deque gets a giant task followed by many small ones (the
  // Zipf head); the other workers must steal the small tasks rather than
  // idle. Task 0 lands on worker 0 (seed() is round-robin), and with 2
  // workers every even-indexed task starts on worker 0's deque.
  WorkStealingPool pool(2);
  std::atomic<int> count{0};
  std::atomic<bool> gate{false};
  std::vector<std::function<void()>> tasks;
  tasks.push_back([&] {
    // Worker 0 is pinned here until the other worker has finished
    // everything else — which it can only do by stealing worker 0's share.
    while (!gate.load(std::memory_order_acquire)) std::this_thread::yield();
    count.fetch_add(1, std::memory_order_relaxed);
  });
  for (int i = 1; i < 41; ++i)
    tasks.push_back([&] {
      if (count.fetch_add(1, std::memory_order_relaxed) + 1 == 40)
        gate.store(true, std::memory_order_release);
    });
  pool.seed(std::move(tasks));
  pool.wait_idle();
  EXPECT_EQ(count.load(), 41);
  const WorkStealingPool::Stats stats = pool.stats();
  EXPECT_EQ(stats.executed, 41u);
  // ~20 of worker 0's tasks were queued behind the pinned task; the other
  // worker must have taken at least some of them.
  EXPECT_GT(stats.tasks_stolen, 0u);
}

TEST(WorkStealingPool, DestructorDrainsSeededTasks) {
  std::atomic<int> count{0};
  {
    WorkStealingPool pool(2);
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 100; ++i)
      tasks.push_back([&count] { count.fetch_add(1, std::memory_order_relaxed); });
    pool.seed(std::move(tasks));
    // No wait_idle(): destruction must still run everything queued.
  }
  EXPECT_EQ(count.load(), 100);
}

TEST(WorkStealingPool, WaitIdleOnEmptyPoolReturnsImmediately) {
  WorkStealingPool pool(2);
  pool.wait_idle();
  pool.seed({});  // empty seed is a no-op
  pool.wait_idle();
  SUCCEED();
}

TEST(WorkStealingPool, TracksMaxQueueDepth) {
  WorkStealingPool pool(2);
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 100; ++i)
    tasks.push_back([] { std::this_thread::sleep_for(std::chrono::microseconds(10)); });
  pool.seed(std::move(tasks));
  pool.wait_idle();
  // 100 tasks round-robined over 2 deques: each deque held up to 50 at once.
  EXPECT_GE(pool.stats().max_queue_depth, 25u);
  EXPECT_LE(pool.stats().max_queue_depth, 50u);
}

TEST(ThreadPool, ScanStalledReportsEachSlowTaskOnce) {
  ThreadPool pool(2);
  std::atomic<bool> release{false};
  pool.submit([&] {
    while (!release.load()) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  });
  // Poll until the watchdog sees the worker stuck past the threshold (the
  // submit -> task-start handoff time is scheduler-dependent).
  std::size_t stalled = 0;
  for (int i = 0; i < 400 && stalled == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    stalled = pool.scan_stalled(10);
  }
  EXPECT_EQ(stalled, 1u);
  // Same task, same episode: a stall is reported once, not once per scan.
  EXPECT_EQ(pool.scan_stalled(10), 0u);
  release.store(true);
  pool.wait_idle();
  EXPECT_EQ(pool.scan_stalled(10), 0u);  // idle workers never count
}

TEST(WorkStealingPool, ScanStalledPairsWithWaitIdleFor) {
  WorkStealingPool pool(2);
  std::atomic<bool> release{false};
  std::vector<std::function<void()>> tasks;
  tasks.push_back([&] {
    while (!release.load()) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  });
  pool.seed(std::move(tasks));
  // The stuck task keeps the pool from going idle...
  EXPECT_FALSE(pool.wait_idle_for(std::chrono::milliseconds(30)));
  // ...and the scanner attributes the stall to exactly one worker, once.
  std::size_t stalled = 0;
  for (int i = 0; i < 400 && stalled == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    stalled = pool.scan_stalled(10);
  }
  EXPECT_EQ(stalled, 1u);
  EXPECT_EQ(pool.scan_stalled(10), 0u);
  release.store(true);
  EXPECT_TRUE(pool.wait_idle_for(std::chrono::seconds(10)));
  EXPECT_EQ(pool.scan_stalled(10), 0u);
}

}  // namespace
}  // namespace hoiho::util
