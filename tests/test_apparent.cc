// Unit tests for stage 2 (core/apparent.h) — the paper's fig. 6 cases.
#include "core/apparent.h"

#include <gtest/gtest.h>

#include <deque>

#include "geo/dictionary.h"

namespace hoiho::core {
namespace {

using geo::builtin_dictionary;

class ApparentTest : public ::testing::Test {
 protected:
  ApparentTest() : dict_(builtin_dictionary()), meas_({}, 16) {
    // Three VPs: Washington DC, London, Tokyo.
    meas_.vps = {
        measure::VantagePoint{"was", "us", {38.91, -77.04}},
        measure::VantagePoint{"lon", "uk", {51.51, -0.13}},
        measure::VantagePoint{"tyo", "jp", {35.68, 139.69}},
    };
    meas_.pings = measure::RttMatrix(16, meas_.vps.size());
  }

  // Registers hostname `raw` for router `r` and tags it.
  TaggedHostname tag(topo::RouterId r, std::string_view raw, ApparentConfig config = {}) {
    hostnames_.push_back(*dns::parse_hostname(raw, arena_));
    const ApparentTagger tagger(dict_, meas_, config);
    return tagger.tag(topo::HostnameRef{r, &hostnames_.back()});
  }

  // Sets RTTs so router `r` is near the given VP (rtt_ms there, large
  // elsewhere but physically sane: big everywhere).
  void place_near(topo::RouterId r, measure::VpId vp, double rtt_ms) {
    for (measure::VpId v = 0; v < meas_.vps.size(); ++v)
      meas_.pings.record(r, v, v == vp ? rtt_ms : 300.0);
  }

  const geo::GeoDictionary& dict_;
  measure::Measurements meas_;
  util::Arena arena_;  // backs hostnames_ (dns::Hostname is a view)
  std::deque<dns::Hostname> hostnames_;
};

TEST_F(ApparentTest, ZayoStyleIataWithCountry) {
  // Paper fig. 6a: lhr is the hint, uk is attached; ntt/zip/zayo are not
  // RTT-consistent or not codes.
  place_near(0, 1, 2.0);  // near London
  const TaggedHostname th = tag(0, "zayo-ntt.mpr1.lhr15.uk.zip.zayo.com");
  bool found_lhr = false;
  for (const ApparentHint& h : th.hints) {
    if (h.code == "lhr") {
      found_lhr = true;
      EXPECT_EQ(h.role, Role::kIata);
      ASSERT_EQ(h.annotations.size(), 1u);
      EXPECT_EQ(h.annotations[0].code, "uk");
      EXPECT_EQ(h.annotations[0].role, Role::kCountryCode);
    }
    EXPECT_NE(h.code, "ntt");  // Tokyo's nrt? "ntt" is not a code; never tagged
  }
  EXPECT_TRUE(found_lhr);
}

TEST_F(ApparentTest, InconsistentHintNotTagged) {
  // A router near Washington cannot be in London.
  place_near(1, 0, 2.0);
  const TaggedHostname th = tag(1, "cr1.lhr2.example.net");
  for (const ApparentHint& h : th.hints) EXPECT_NE(h.code, "lhr");
}

TEST_F(ApparentTest, CityNameHint) {
  place_near(2, 0, 1.0);
  const TaggedHostname th = tag(2, "ae1.ashburn2.example.net");
  bool found = false;
  for (const ApparentHint& h : th.hints) {
    if (h.role == Role::kCityName && h.code == "ashburn") found = true;
  }
  EXPECT_TRUE(found);
}

TEST_F(ApparentTest, CityNameNarrowedByState) {
  // "washington" + "dc": candidates narrowed to Washington, DC.
  place_near(3, 0, 1.0);
  const TaggedHostname th = tag(3, "ge0.washington.dc.example.net");
  bool found = false;
  for (const ApparentHint& h : th.hints) {
    if (h.role != Role::kCityName || h.code != "washington") continue;
    found = true;
    ASSERT_EQ(h.locations.size(), 1u);
    EXPECT_EQ(dict_.location(h.locations[0]).state, "dc");
    ASSERT_EQ(h.annotations.size(), 1u);
    EXPECT_EQ(h.annotations[0].role, Role::kStateCode);
  }
  EXPECT_TRUE(found);
}

TEST_F(ApparentTest, ClliPrefix) {
  place_near(4, 0, 1.0);
  const TaggedHostname th = tag(4, "ae-1.r02.asbnva03.example.net");
  bool found = false;
  for (const ApparentHint& h : th.hints) {
    if (h.role == Role::kClli && h.code == "asbnva") {
      found = true;
      EXPECT_FALSE(h.split_clli);
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(ApparentTest, ClliPrefixOfLongerString) {
  // Paper fig. 6d: first six letters of an 8-letter CLLI code.
  place_near(5, 0, 1.0);
  const TaggedHostname th = tag(5, "0.af0.asbnva83-mse01-a-ie1.example.net");
  bool found = false;
  for (const ApparentHint& h : th.hints) {
    if (h.role == Role::kClli && h.code == "asbnva") {
      found = true;
      EXPECT_EQ(h.end - h.begin, 6u);
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(ApparentTest, SplitClli) {
  // Paper fig. 6e: 4+2 split across punctuation/digits within a label.
  place_near(6, 0, 1.0);
  const TaggedHostname th = tag(6, "ae1.asbn01-va.example.net");
  bool found = false;
  for (const ApparentHint& h : th.hints) {
    if (h.role == Role::kClli && h.code == "asbnva") {
      found = true;
      EXPECT_TRUE(h.split_clli);
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(ApparentTest, SplitClliNotAcrossLabels) {
  place_near(7, 0, 1.0);
  const TaggedHostname th = tag(7, "asbn.va.example.net");
  for (const ApparentHint& h : th.hints) {
    EXPECT_FALSE(h.split_clli && h.code == "asbnva");
  }
}

TEST_F(ApparentTest, FacilityStreetAddress) {
  // Paper fig. 6f: "111 8th Ave" as a label. DC -> NYC is ~330 km, so a
  // 4 ms sample from the DC VP keeps the facility feasible.
  place_near(8, 0, 4.0);
  const TaggedHostname th = tag(8, "ae-5.111-8th-ave.ny.example.net");
  bool found = false;
  for (const ApparentHint& h : th.hints) {
    if (h.role == Role::kFacility && h.code == "1118thave") found = true;
  }
  EXPECT_TRUE(found);
}

TEST_F(ApparentTest, NoRttSamplesVacuouslyTagged) {
  // Router 9 has no samples: dictionary hits are unconstrained.
  const TaggedHostname th = tag(9, "cr1.lhr2.example.net");
  bool found = false;
  for (const ApparentHint& h : th.hints)
    if (h.code == "lhr") found = true;
  EXPECT_TRUE(found);
}

TEST_F(ApparentTest, NoHintsInPlainHostname) {
  place_near(10, 0, 1.0);
  const TaggedHostname th = tag(10, "core1.example.net");
  EXPECT_FALSE(th.has_hint());
}

TEST_F(ApparentTest, MultipleApparentHints) {
  // Paper fig. 6b: several strings can be apparent hints at once.
  place_near(11, 1, 3.0);  // near London: both lhr and eg. "lon" feasible
  const TaggedHostname th = tag(11, "lon-lhr1.example.net");
  std::size_t hints = 0;
  for (const ApparentHint& h : th.hints)
    if (h.code == "lon" || h.code == "lhr") ++hints;
  EXPECT_EQ(hints, 2u);
}

TEST_F(ApparentTest, IcaoCanBeDisabled) {
  place_near(12, 0, 2.0);
  ApparentConfig config;
  config.consider_icao = false;
  const TaggedHostname with = tag(12, "kiad1.example.net");
  const TaggedHostname without = tag(12, "kiad1.example.net", config);
  bool with_found = false, without_found = false;
  for (const ApparentHint& h : with.hints)
    if (h.role == Role::kIcao) with_found = true;
  for (const ApparentHint& h : without.hints)
    if (h.role == Role::kIcao) without_found = true;
  EXPECT_TRUE(with_found);  // "kiad" is a derived ICAO for Washington
  EXPECT_FALSE(without_found);
}

TEST_F(ApparentTest, AnnotationMustNotOverlapHint) {
  // A bare two-letter hostname token that is itself the hint's text cannot
  // self-annotate.
  place_near(13, 1, 2.0);
  const TaggedHostname th = tag(13, "cr1.lhr1.uk.example.net");
  for (const ApparentHint& h : th.hints) {
    for (const HintAnnotation& a : h.annotations) {
      EXPECT_FALSE(a.begin >= h.begin && a.end <= h.end);
    }
  }
}

}  // namespace
}  // namespace hoiho::core
