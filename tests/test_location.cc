// Unit tests for geo/location.h — place names and the §5.4 abbreviation
// heuristics, including every example the paper gives.
#include "geo/location.h"

#include <gtest/gtest.h>

namespace hoiho::geo {
namespace {

TEST(SquashPlaceName, Basics) {
  EXPECT_EQ(squash_place_name("New York"), "newyork");
  EXPECT_EQ(squash_place_name("Ashburn"), "ashburn");
  EXPECT_EQ(squash_place_name("Fort-Collins"), "fortcollins");
  EXPECT_EQ(squash_place_name("Ho Chi Minh City"), "hochiminhcity");
  EXPECT_EQ(squash_place_name("42"), "");
}

TEST(PlaceWords, SplitsAndLowercases) {
  const auto words = place_words("New York");
  ASSERT_EQ(words.size(), 2u);
  EXPECT_EQ(words[0], "new");
  EXPECT_EQ(words[1], "york");
  EXPECT_EQ(place_words("Zurich").size(), 1u);
  EXPECT_TRUE(place_words("--").empty());
}

TEST(SameCountry, UkGbEquivalence) {
  // Paper §5.2: operators write "uk"; ISO says "GB".
  EXPECT_TRUE(same_country("uk", "gb"));
  EXPECT_TRUE(same_country("gb", "uk"));
  EXPECT_TRUE(same_country("UK", "gb"));
  EXPECT_TRUE(same_country("us", "US"));
  EXPECT_FALSE(same_country("us", "ca"));
}

// --- paper §5.4 abbreviation examples ---------------------------------------

TEST(Abbrev, AshMatchesAshburn) {
  EXPECT_TRUE(is_place_abbrev("ash", "Ashburn"));
}

TEST(Abbrev, MlanMatchesMilan) {
  EXPECT_TRUE(is_place_abbrev("mlan", "Milan"));
}

TEST(Abbrev, TkyMatchesTokyo) {
  EXPECT_TRUE(is_place_abbrev("tky", "Tokyo"));
}

TEST(Abbrev, NykAllowedNwkNot) {
  // Multi-word rule: a word's first letter must match before its other
  // letters ("we allow 'nyk' but not 'nwk'").
  EXPECT_TRUE(is_place_abbrev("nyk", "New York"));
  EXPECT_FALSE(is_place_abbrev("nwk", "New York"));
}

TEST(Abbrev, FirstCharacterMustMatch) {
  EXPECT_FALSE(is_place_abbrev("shb", "Ashburn"));  // chars in order, but 's' != 'a'
  EXPECT_FALSE(is_place_abbrev("ork", "New York"));
}

TEST(Abbrev, CharsMustAppearInOrder) {
  EXPECT_FALSE(is_place_abbrev("hsa", "Ashburn"));
  EXPECT_TRUE(is_place_abbrev("abr", "Ashburn"));
}

TEST(Abbrev, EmptyInputsRejected) {
  EXPECT_FALSE(is_place_abbrev("", "Ashburn"));
  EXPECT_FALSE(is_place_abbrev("a", ""));
}

TEST(Abbrev, WholeNameMatchesItself) {
  EXPECT_TRUE(is_place_abbrev("ashburn", "Ashburn"));
}

TEST(Abbrev, WordInitialsMatch) {
  EXPECT_TRUE(is_place_abbrev("kl", "Kuala Lumpur"));
  EXPECT_TRUE(is_place_abbrev("kual", "Kuala Lumpur"));
  EXPECT_TRUE(is_place_abbrev("kslr", "Kuala Selangor"));
}

TEST(Abbrev, Contiguous4ForCityNamePlans) {
  // "ftcollins" for "Fort Collins": >=4 contiguous characters required when
  // the regex extracts whole city names.
  AbbrevOptions opts;
  opts.require_contiguous4 = true;
  EXPECT_TRUE(is_place_abbrev("ftcollins", "Fort Collins", opts));
  EXPECT_FALSE(is_place_abbrev("ftcl", "Fort Collins", opts));  // no 4 contiguous
  EXPECT_TRUE(is_place_abbrev("fortc", "Fort Collins", opts));
}

TEST(Abbrev, Contiguous4ShortNamesUseNameLength) {
  AbbrevOptions opts;
  opts.require_contiguous4 = true;
  EXPECT_TRUE(is_place_abbrev("rome", "Rome", opts));
}

TEST(Abbrev, ThreeLetterIsTooLossyWithContiguous4) {
  AbbrevOptions opts;
  opts.require_contiguous4 = true;
  EXPECT_FALSE(is_place_abbrev("ash", "Ashburn", opts));
  // Without the option the same abbreviation passes.
  EXPECT_TRUE(is_place_abbrev("ash", "Ashburn"));
}

TEST(Abbrev, HlmAmbiguity) {
  // Paper fig. 3c: "hlm" is ambiguous across Haarlem / Helmond / Hilversum —
  // all three satisfy the abbreviation heuristics, which is exactly why
  // lossy abbreviations challenge inference (challenge 4).
  EXPECT_TRUE(is_place_abbrev("hlm", "Haarlem"));
  EXPECT_TRUE(is_place_abbrev("hlm", "Helmond"));
  EXPECT_TRUE(is_place_abbrev("hlm", "Hilversum"));
}

}  // namespace
}  // namespace hoiho::geo
