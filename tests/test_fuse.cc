// Unit and integration tests for src/fuse/: candidate gathering with
// dictionary ambiguity expansion, RTT feasibility margins, deterministic
// ranking (byte-identical across thread counts — run under TSan in CI), the
// grid size-cap fallback, the lenient loaders, and the audit decision
// kernel with exact counter accounting.
#include <gtest/gtest.h>

#include <sstream>
#include <thread>

#include "fuse/audit.h"
#include "geo/dictionary.h"
#include "regex/parser.h"

namespace hoiho::fuse {
namespace {

geo::LocationId find_city(const geo::GeoDictionary& dict, std::string_view city,
                          std::string_view country, std::string_view state = "") {
  for (geo::LocationId id :
       dict.lookup(geo::HintType::kCityName, geo::squash_place_name(city))) {
    if (!geo::same_country(dict.location(id).country, country)) continue;
    if (!state.empty() && dict.location(id).state != state) continue;
    return id;
  }
  return geo::kInvalidLocation;
}

// A city-name convention over test.net: the hostname's second label is a
// squashed city name ("melbourne" matches both VIC, AU and FL, US).
core::Geolocator city_geolocator(const geo::GeoDictionary& dict,
                                 core::NcClass cls = core::NcClass::kGood) {
  core::Geolocator g(dict);
  core::NamingConvention nc;
  nc.suffix = "test.net";
  core::GeoRegex gr;
  gr.regex = *rx::parse("^.+\\.([a-z]+)\\.test\\.net$");
  gr.plan.roles = {core::Role::kCityName};
  nc.regexes.push_back(std::move(gr));
  g.add(std::move(nc), cls);
  return g;
}

// Measurements with one VP sitting exactly at `vp_at`, one sample for
// router 0 of `rtt_ms`.
measure::Measurements pin_router(const geo::Coordinate& vp_at, double rtt_ms) {
  measure::Measurements meas({measure::VantagePoint{"vp0", "xx", vp_at}}, 1);
  meas.pings.record(0, 0, rtt_ms);
  return meas;
}

// --- candidate gathering -----------------------------------------------------

TEST(Candidates, AmbiguousCityExpandsToAllSiblings) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  const core::Geolocator g = city_geolocator(dict);
  const CandidateSet set = gather_candidates(g, "cr1.melbourne.test.net");
  ASSERT_TRUE(set.matched);
  EXPECT_EQ(set.code, "melbourne");
  ASSERT_GE(set.candidates.size(), 2u) << "builtin atlas has at least two Melbournes";
  bool saw_au = false, saw_fl = false;
  for (const Candidate& c : set.candidates) {
    if (c.location == find_city(dict, "Melbourne", "au")) saw_au = true;
    if (c.location == find_city(dict, "Melbourne", "us", "fl")) saw_fl = true;
    EXPECT_EQ(c.source, Source::kDictionary);
    EXPECT_FALSE(c.rtt_checked);
  }
  EXPECT_TRUE(saw_au);
  EXPECT_TRUE(saw_fl);
  // The hostname-only answer is one of the candidates (the tiebreak winner).
  EXPECT_NE(set.hostname_best, geo::kInvalidLocation);
}

TEST(Candidates, ClaimedCoordinateAppendsLast) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  const core::Geolocator g = city_geolocator(dict);
  const geo::Coordinate claim{48.85, 2.35};
  const CandidateSet set = gather_candidates(g, "cr1.melbourne.test.net", claim);
  ASSERT_GE(set.candidates.size(), 3u);
  const Candidate& last = set.candidates.back();
  EXPECT_EQ(last.source, Source::kClaimed);
  EXPECT_EQ(last.location, geo::kInvalidLocation);
  EXPECT_DOUBLE_EQ(last.coord.lat, 48.85);
}

TEST(Candidates, UnmatchedHostnameStillYieldsClaimed) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  const core::Geolocator g = city_geolocator(dict);
  const geo::Coordinate claim{48.85, 2.35};
  const CandidateSet set = gather_candidates(g, "cr1.unknown.example.org", claim);
  EXPECT_FALSE(set.matched);
  ASSERT_EQ(set.candidates.size(), 1u);
  EXPECT_EQ(set.candidates[0].source, Source::kClaimed);
  EXPECT_EQ(set.hostname_best, geo::kInvalidLocation);
}

// --- RTT filter --------------------------------------------------------------

TEST(RttFilter, RefutesTheFarSibling) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  const core::Geolocator g = city_geolocator(dict);
  CandidateSet set = gather_candidates(g, "cr1.melbourne.test.net");
  const geo::LocationId au = find_city(dict, "Melbourne", "au");

  // A VP in Melbourne AU measuring 2 ms pins the router there: the
  // speed-of-light bound from Melbourne FL (~15000 km away) is far larger.
  const measure::Measurements meas = pin_router(dict.location(au).coord, 2.0);
  const RttFilter filter(meas);
  const std::size_t infeasible = filter.apply(0, set.candidates);
  EXPECT_GE(infeasible, 1u);
  for (const Candidate& c : set.candidates) {
    EXPECT_TRUE(c.rtt_checked);
    if (c.location == au) {
      EXPECT_TRUE(c.feasible);
      EXPECT_GE(c.margin_ms, 0.0);
    } else {
      EXPECT_FALSE(c.feasible) << "sibling " << dict.location(c.location).city;
      EXPECT_LT(c.margin_ms, 0.0);
    }
  }
}

TEST(RttFilter, UnmeasuredRouterLeavesCandidatesUnchecked) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  const core::Geolocator g = city_geolocator(dict);
  CandidateSet set = gather_candidates(g, "cr1.melbourne.test.net");
  measure::Measurements meas({measure::VantagePoint{"vp0", "xx", {0, 0}}}, 2);
  const RttFilter filter(meas);
  EXPECT_EQ(filter.apply(1, set.candidates), 0u);  // router 1: no samples
  for (const Candidate& c : set.candidates) {
    EXPECT_FALSE(c.rtt_checked);
    EXPECT_TRUE(c.feasible);
  }
}

TEST(RttFilter, SlackRescuesABarelyInfeasibleCandidate) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  const core::Geolocator g = city_geolocator(dict);
  const geo::LocationId au = find_city(dict, "Melbourne", "au");
  // Measure *less* than the physical minimum from a far VP: infeasible at
  // slack 0, feasible once the slack covers the deficit.
  const geo::Coordinate far{51.51, -0.13};  // London
  const double bound = geo::min_rtt_ms(dict.location(au).coord, far);
  const measure::Measurements meas = pin_router(far, bound - 3.0);

  CandidateSet strict_set = gather_candidates(g, "cr1.melbourne.test.net");
  const RttFilter strict(meas);
  strict.apply(0, strict_set.candidates);
  CandidateSet slack_set = gather_candidates(g, "cr1.melbourne.test.net");
  const RttFilter slacked(meas, nullptr, {.slack_ms = 5.0});
  slacked.apply(0, slack_set.candidates);

  for (std::size_t i = 0; i < strict_set.candidates.size(); ++i) {
    if (strict_set.candidates[i].location != au) continue;
    EXPECT_FALSE(strict_set.candidates[i].feasible);
    EXPECT_TRUE(slack_set.candidates[i].feasible);
  }
}

TEST(RttFilter, GridAndHaversineAgreeExactly) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  const core::Geolocator g = city_geolocator(dict);
  const geo::LocationId au = find_city(dict, "Melbourne", "au");
  const measure::Measurements meas = pin_router(dict.location(au).coord, 2.0);

  std::vector<geo::Coordinate> coords(dict.size());
  for (std::size_t id = 0; id < coords.size(); ++id)
    coords[id] = dict.location(static_cast<geo::LocationId>(id)).coord;
  const measure::ExpectedRttGrid grid(coords, meas.vps);

  CandidateSet with_grid = gather_candidates(g, "cr1.melbourne.test.net");
  CandidateSet without = gather_candidates(g, "cr1.melbourne.test.net");
  RttFilter(meas, &grid).apply(0, with_grid.candidates);
  RttFilter(meas, nullptr).apply(0, without.candidates);
  ASSERT_EQ(with_grid.candidates.size(), without.candidates.size());
  for (std::size_t i = 0; i < with_grid.candidates.size(); ++i) {
    EXPECT_EQ(with_grid.candidates[i].feasible, without.candidates[i].feasible);
    // Same doubles, not merely close: the grid stores the same haversine.
    EXPECT_EQ(with_grid.candidates[i].margin_ms, without.candidates[i].margin_ms);
  }
}

// --- FuseContext grid cap ----------------------------------------------------

TEST(FuseContext, GridCapFallsBackToHaversinesWithIdenticalVerdicts) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  const core::Geolocator g = city_geolocator(dict);
  const geo::LocationId au = find_city(dict, "Melbourne", "au");
  const std::vector<SubjectRow> subjects = {{"cr1.melbourne.test.net", 0, ""}};

  const auto dense = FuseContext::build(subjects, pin_router(dict.location(au).coord, 2.0),
                                        dict, {}, /*max_grid_cells=*/1u << 20);
  const auto capped = FuseContext::build(subjects, pin_router(dict.location(au).coord, 2.0),
                                         dict, {}, /*max_grid_cells=*/1);
  EXPECT_NE(dense->grid(), nullptr);
  EXPECT_EQ(capped->grid(), nullptr);

  const FuseResult a = Fuser(g, dense.get()).fuse("cr1.melbourne.test.net");
  const FuseResult b = Fuser(g, capped.get()).fuse("cr1.melbourne.test.net");
  ASSERT_TRUE(a.answered());
  ASSERT_TRUE(b.answered());
  ASSERT_EQ(a.verdicts.size(), b.verdicts.size());
  for (std::size_t i = 0; i < a.verdicts.size(); ++i) {
    EXPECT_EQ(a.verdicts[i].location, b.verdicts[i].location);
    EXPECT_EQ(a.verdicts[i].score, b.verdicts[i].score);
    EXPECT_EQ(a.verdicts[i].evidence, b.verdicts[i].evidence);
  }
}

// --- fusion end-to-end -------------------------------------------------------

TEST(Fuser, RttOverridesThePopulationTiebreak) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  const core::Geolocator g = city_geolocator(dict);
  const geo::LocationId au = find_city(dict, "Melbourne", "au");
  const geo::LocationId fl = find_city(dict, "Melbourne", "us", "fl");
  ASSERT_NE(au, geo::kInvalidLocation);
  ASSERT_NE(fl, geo::kInvalidLocation);

  // Hostname-only picks AU (facility + population tiebreak)...
  const auto hostname_only = g.locate("cr1.melbourne.test.net");
  ASSERT_TRUE(hostname_only.has_value());
  EXPECT_EQ(hostname_only->location, au);

  // ...but the router actually sits in Florida, and the RTTs say so.
  const std::vector<SubjectRow> subjects = {{"cr1.melbourne.test.net", 0, ""}};
  const auto ctx =
      FuseContext::build(subjects, pin_router(dict.location(fl).coord, 2.0), dict);
  const FuseResult fused = Fuser(g, ctx.get()).fuse("cr1.melbourne.test.net");
  ASSERT_TRUE(fused.answered());
  EXPECT_TRUE(fused.rtt_constrained);
  EXPECT_EQ(fused.best().location, fl);
  EXPECT_TRUE(fused.best().feasible);
}

TEST(Fuser, AddressSubjectExtractsFromRouterHostname) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  const core::Geolocator g = city_geolocator(dict);
  const geo::LocationId au = find_city(dict, "Melbourne", "au");
  const std::vector<SubjectRow> subjects = {
      {"192.0.2.1", 0, "cr1.melbourne.test.net"},
      {"cr1.melbourne.test.net", 0, ""},
  };
  const auto ctx =
      FuseContext::build(subjects, pin_router(dict.location(au).coord, 2.0), dict);
  const FuseResult fused = Fuser(g, ctx.get()).fuse("192.0.2.1");
  ASSERT_TRUE(fused.answered());
  EXPECT_EQ(fused.set.code, "melbourne");
  EXPECT_EQ(fused.best().location, au);
}

TEST(Fuser, NullContextStillRanksOnExtractionAlone) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  const core::Geolocator g = city_geolocator(dict);
  const FuseResult fused = Fuser(g).fuse("cr1.melbourne.test.net");
  ASSERT_TRUE(fused.answered());
  EXPECT_FALSE(fused.rtt_constrained);
  for (const Verdict& v : fused.verdicts) EXPECT_FALSE(v.rtt_checked);
}

// --- ranking determinism -----------------------------------------------------

TEST(Ranker, ByteIdenticalAcrossEightThreads) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  const core::Geolocator g = city_geolocator(dict);
  const geo::LocationId au = find_city(dict, "Melbourne", "au");
  const std::vector<SubjectRow> subjects = {{"cr1.melbourne.test.net", 0, ""}};
  const auto ctx =
      FuseContext::build(subjects, pin_router(dict.location(au).coord, 2.0), dict);
  const Fuser fuser(g, ctx.get());
  const geo::Coordinate claim{48.85, 2.35};

  const FuseResult reference = fuser.fuse("cr1.melbourne.test.net", claim);
  ASSERT_TRUE(reference.answered());

  constexpr int kThreads = 8, kReps = 50;
  std::vector<int> mismatches(kThreads, 0);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&, t] {
      for (int rep = 0; rep < kReps; ++rep) {
        const FuseResult r = fuser.fuse("cr1.melbourne.test.net", claim);
        if (r.verdicts.size() != reference.verdicts.size()) {
          ++mismatches[t];
          continue;
        }
        for (std::size_t i = 0; i < r.verdicts.size(); ++i) {
          const Verdict& a = r.verdicts[i];
          const Verdict& b = reference.verdicts[i];
          if (a.location != b.location || a.score != b.score || a.source != b.source ||
              a.evidence != b.evidence)
            ++mismatches[t];
        }
      }
    });
  for (std::thread& t : threads) t.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(mismatches[t], 0) << "thread " << t;
}

TEST(Ranker, InfeasibleCandidatesScoreBelowFeasibleOnes) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  const core::Geolocator g = city_geolocator(dict);
  const geo::LocationId au = find_city(dict, "Melbourne", "au");
  const std::vector<SubjectRow> subjects = {{"cr1.melbourne.test.net", 0, ""}};
  const auto ctx =
      FuseContext::build(subjects, pin_router(dict.location(au).coord, 2.0), dict);
  const FuseResult fused = Fuser(g, ctx.get()).fuse("cr1.melbourne.test.net");
  ASSERT_TRUE(fused.answered());
  const RankerConfig rc;
  for (const Verdict& v : fused.verdicts) {
    if (!v.feasible) {
      // rtt_score is 0: the ceiling is w_nc + w_pop.
      EXPECT_LE(v.score, rc.w_nc + rc.w_pop + 1e-12);
      EXPECT_LT(v.score, fused.best().score);
    }
  }
}

TEST(Ranker, PopulationPriorOverrideFlipsTheUncheckedTiebreak) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  const core::Geolocator g = city_geolocator(dict);
  const geo::LocationId au = find_city(dict, "Melbourne", "au");
  const geo::LocationId fl = find_city(dict, "Melbourne", "us", "fl");

  PopulationPrior prior;
  prior.set(fl, 90'000'000);  // absurd override: FL out-populates AU
  prior.set(au, 1'000);
  const std::vector<SubjectRow> subjects = {{"cr1.melbourne.test.net", 0, ""}};
  // No RTT samples for router 0: measurements exist but say nothing, so the
  // prior is the only discriminating signal beyond nc_conf (equal here).
  measure::Measurements silent({measure::VantagePoint{"vp0", "xx", {0, 0}}}, 1);
  const auto ctx = FuseContext::build(subjects, std::move(silent), dict, std::move(prior));
  const FuseResult fused = Fuser(g, ctx.get()).fuse("cr1.melbourne.test.net");
  ASSERT_TRUE(fused.answered());
  EXPECT_EQ(fused.best().location, fl);
}

// --- lenient loaders ---------------------------------------------------------

TEST(Loaders, SubjectsSkipBadRowsLeniently) {
  std::istringstream in(
      "# comment\n"
      "cr1.melbourne.test.net,0\n"
      "192.0.2.1,0,cr1.melbourne.test.net\n"
      "badrow\n"
      "x.test.net,notanumber\n"
      ",3\n"
      "y.test.net,2\n");
  io::LoadOptions opt;
  opt.lenient = true;
  io::LoadReport rep;
  const auto rows = load_subjects(in, opt, &rep);
  ASSERT_TRUE(rows.has_value());
  EXPECT_EQ(rows->size(), 3u);
  EXPECT_EQ(rep.skipped_count("bad_fields"), 2u);  // "badrow" and empty subject
  EXPECT_EQ(rep.skipped_count("bad_number"), 1u);
  EXPECT_EQ((*rows)[1].hostname, "cr1.melbourne.test.net");
  EXPECT_EQ((*rows)[2].router, 2u);
}

TEST(Loaders, SubjectsStrictModeFailsOnFirstBadRow) {
  std::istringstream in("good.test.net,0\nbadrow\n");
  io::LoadReport rep;
  EXPECT_FALSE(load_subjects(in, {}, &rep).has_value());
  EXPECT_FALSE(rep.ok());
}

TEST(Loaders, FeedParsesAndSkips) {
  std::istringstream in(
      "host1.test.net,48.85,2.35\n"
      "host2.test.net,91.0,2.35\n"  // bad latitude
      "host3.test.net,nope,2.35\n"
      "host4.test.net,-33.87,151.21\n");
  io::LoadOptions opt;
  opt.lenient = true;
  io::LoadReport rep;
  const auto feed = load_feed(in, opt, &rep);
  ASSERT_TRUE(feed.has_value());
  EXPECT_EQ(feed->size(), 2u);
  EXPECT_DOUBLE_EQ((*feed)[1].claimed.lon, 151.21);
  EXPECT_GE(rep.skipped_total(), 2u);
}

TEST(Loaders, PopulationPriorResolvesByCityAndCountry) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  const geo::LocationId fl = find_city(dict, "Melbourne", "us", "fl");
  const geo::LocationId au = find_city(dict, "Melbourne", "au");
  std::istringstream in(
      "Melbourne,fl,us,123456\n"
      "Melbourne,au,77777\n"
      "Nowhereville,zz,1\n");
  io::LoadOptions opt;
  opt.lenient = true;
  io::LoadReport rep;
  const auto prior = PopulationPrior::load(in, dict, opt, &rep);
  ASSERT_TRUE(prior.has_value());
  EXPECT_EQ(prior->population(dict, fl), 123456u);
  EXPECT_EQ(prior->population(dict, au), 77777u);
  EXPECT_GE(rep.skipped_count("unknown_place"), 1u);
}

// --- audit -------------------------------------------------------------------

TEST(Audit, ClassifiesAgreeRefuteUnknown) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  const core::Geolocator g = city_geolocator(dict);
  const geo::LocationId au = find_city(dict, "Melbourne", "au");
  const std::vector<SubjectRow> subjects = {{"cr1.melbourne.test.net", 0, ""}};
  const auto ctx =
      FuseContext::build(subjects, pin_router(dict.location(au).coord, 2.0), dict);
  const Auditor auditor(g, ctx.get());

  // Claiming the true location agrees.
  const AuditRow agree = auditor.audit("cr1.melbourne.test.net", dict.location(au).coord);
  EXPECT_EQ(agree.outcome, AuditOutcome::kAgree);
  EXPECT_LE(agree.nearest_km, 1.0);

  // Claiming the far sibling's city is RTT-infeasible: refuted.
  const geo::LocationId fl = find_city(dict, "Melbourne", "us", "fl");
  const AuditRow refute = auditor.audit("cr1.melbourne.test.net", dict.location(fl).coord);
  EXPECT_EQ(refute.outcome, AuditOutcome::kRefute);

  // A subject with no convention, no router, no measurements: unknown.
  const AuditRow unknown = auditor.audit("mystery.example.org", dict.location(au).coord);
  EXPECT_EQ(unknown.outcome, AuditOutcome::kUnknown);
}

TEST(Audit, FeedAccountingIsExactAndMirroredToRegistry) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  const core::Geolocator g = city_geolocator(dict);
  const geo::LocationId au = find_city(dict, "Melbourne", "au");
  const geo::LocationId fl = find_city(dict, "Melbourne", "us", "fl");
  const std::vector<SubjectRow> subjects = {{"cr1.melbourne.test.net", 0, ""}};
  const auto ctx =
      FuseContext::build(subjects, pin_router(dict.location(au).coord, 2.0), dict);

  obs::Registry registry;
  const Auditor auditor(g, ctx.get(), {}, &registry);
  const std::vector<FeedRow> feed = {
      {"cr1.melbourne.test.net", dict.location(au).coord},
      {"cr1.melbourne.test.net", dict.location(fl).coord},
      {"mystery.example.org", dict.location(au).coord},
      {"cr1.melbourne.test.net", dict.location(au).coord},
  };
  std::vector<AuditRow> rows;
  const AuditSummary summary = auditor.audit_feed(feed, &rows);
  EXPECT_EQ(summary.rows, 4u);
  EXPECT_EQ(summary.agree + summary.refute + summary.unknown, summary.rows);
  EXPECT_EQ(summary.agree, 2u);
  EXPECT_EQ(summary.refute, 1u);
  EXPECT_EQ(summary.unknown, 1u);
  ASSERT_EQ(rows.size(), 4u);

  const obs::Snapshot snap = registry.snapshot();
  EXPECT_EQ(snap.value("audit_agree"), summary.agree);
  EXPECT_EQ(snap.value("audit_refute"), summary.refute);
  EXPECT_EQ(snap.value("audit_unknown"), summary.unknown);
}

TEST(Audit, FuseMetricsLandInRegistry) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  const core::Geolocator g = city_geolocator(dict);
  const geo::LocationId au = find_city(dict, "Melbourne", "au");
  const std::vector<SubjectRow> subjects = {{"cr1.melbourne.test.net", 0, ""}};
  const auto ctx =
      FuseContext::build(subjects, pin_router(dict.location(au).coord, 2.0), dict);

  obs::Registry registry;
  const Fuser fuser(g, ctx.get(), {}, FuseMetrics(registry));
  const FuseResult fused = fuser.fuse("cr1.melbourne.test.net");
  ASSERT_TRUE(fused.answered());

  const obs::Snapshot snap = registry.snapshot();
  EXPECT_EQ(snap.value("fuse_candidates"), fused.set.candidates.size());
  EXPECT_GE(snap.value("fuse_rtt_infeasible"), 1u);
  const obs::Snapshot::Entry* hist = snap.find("fuse_rank_score");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->hist.count, 1u);
}

}  // namespace
}  // namespace hoiho::fuse
