// Streaming-world and streaming-pipeline invariants (DESIGN.md §12):
//
//   * batch-size invariance — the emitted hostname stream is identical no
//     matter how suffixes are grouped into batches (per-suffix rngs);
//   * Zipf skew — the head suffix dwarfs the tail, sizes follow the plan;
//   * run_stream ≡ run — streaming the world through Hoiho produces the
//     same per-suffix learnings as materializing it as one batch;
//   * threads=1 ≡ threads=8 — work-stealing does not perturb results.
#include <gtest/gtest.h>

#include <map>
#include <sstream>

#include "core/hoiho.h"
#include "sim/streaming.h"
#include "util/thread_pool.h"

namespace hoiho::core {
namespace {

sim::StreamingWorldConfig small_config() {
  sim::StreamingWorldConfig config;
  config.seed = 77;
  config.suffixes = 40;
  config.target_hostnames = 1200;
  config.max_hostnames_per_suffix = 256;
  config.vp_count = 16;
  config.batch_hostname_budget = 300;
  config.traits.geohint_scheme_rate = 0.8;
  config.traits.hostname_rate = 0.85;
  return config;
}

// The full hostname stream as one string: every suffix in order, every
// hostname (with its batch-local router id re-based to a per-suffix
// ordinal so the dump is batch-independent).
std::string dump_stream(sim::StreamingWorld& world) {
  std::ostringstream os;
  while (auto batch = world.next_batch()) {
    for (const topo::SuffixGroup& g : batch->groups) {
      os << "== " << g.suffix << "\n";
      const topo::RouterId base = g.hostnames.empty() ? 0 : g.hostnames.front().router;
      for (const topo::HostnameRef& ref : g.hostnames)
        os << (ref.router - base) << " " << ref.hostname->full << "\n";
    }
  }
  return os.str();
}

TEST(StreamingWorld, StreamIsInvariantAcrossBatchSizes) {
  sim::StreamingWorldConfig config = small_config();
  std::string baseline;
  for (const std::size_t budget : {std::size_t{1}, std::size_t{300}, std::size_t{100000}}) {
    config.batch_hostname_budget = budget;
    sim::StreamingWorld world(geo::builtin_dictionary(), config);
    const std::string dump = dump_stream(world);
    EXPECT_FALSE(dump.empty());
    if (baseline.empty()) {
      baseline = dump;
    } else {
      EXPECT_EQ(baseline, dump) << "batch budget " << budget << " changed the stream";
    }
  }
}

TEST(StreamingWorld, ResetReproducesTheStream) {
  sim::StreamingWorld world(geo::builtin_dictionary(), small_config());
  const std::string first = dump_stream(world);
  EXPECT_EQ(world.next_batch(), std::nullopt);  // exhausted
  world.reset();
  EXPECT_EQ(world.next_suffix_index(), 0u);
  EXPECT_EQ(first, dump_stream(world));
}

TEST(StreamingWorld, SeedChangesTheStream) {
  sim::StreamingWorldConfig config = small_config();
  sim::StreamingWorld a(geo::builtin_dictionary(), config);
  config.seed = 78;
  sim::StreamingWorld b(geo::builtin_dictionary(), config);
  EXPECT_NE(dump_stream(a), dump_stream(b));
}

TEST(StreamingWorld, ZipfPlanIsSkewedAndBounded) {
  const sim::StreamingWorldConfig config = small_config();
  sim::StreamingWorld world(geo::builtin_dictionary(), config);
  // Head suffix gets the most routers; tail gets the floor; monotone-ish
  // decay overall (exact monotonicity can break at the clamp boundary).
  EXPECT_GT(world.planned_routers(0), world.planned_routers(config.suffixes - 1));
  EXPECT_GE(world.planned_routers(config.suffixes - 1), config.min_routers_per_suffix);
  std::size_t total = 0;
  for (std::size_t k = 0; k < config.suffixes; ++k) {
    EXPECT_LE(world.planned_routers(k) * 2, config.max_hostnames_per_suffix * 3)
        << "suffix " << k << " exceeds the per-suffix clamp";
    total += world.planned_routers(k);
  }
  // The plan lands in the right order of magnitude of the hostname target
  // (hostname_rate * interfaces-per-router converts routers to hostnames).
  EXPECT_GT(total, config.target_hostnames / 8);
  EXPECT_LT(total, config.target_hostnames * 4);
}

TEST(StreamingWorld, AccountingCountsRenderedHostnames) {
  sim::StreamingWorld world(geo::builtin_dictionary(), small_config());
  std::size_t streamed = 0;
  while (auto batch = world.next_batch()) streamed += batch->hostname_count();
  EXPECT_EQ(world.report().records, streamed);
  EXPECT_GE(world.report().lines, world.report().records);  // lines include unnamed interfaces
  EXPECT_TRUE(world.report().ok());
}

// The compact per-suffix outcome a streamed run retains (tagged /
// per_hostname payloads are cleared by design), sorted by suffix so batch
// order and group_by_suffix order compare equal.
std::string dump_compact(const HoihoResult& result) {
  std::map<std::string, std::string> by_suffix;
  for (const SuffixResult& sr : result.suffixes) {
    std::ostringstream os;
    os << "hostnames=" << sr.hostname_count << " tagged=" << sr.tagged_count
       << " cls=" << to_string(sr.cls) << " tp=" << sr.eval.counts.tp
       << " fp=" << sr.eval.counts.fp << " fn=" << sr.eval.counts.fn
       << " unk=" << sr.eval.counts.unk << " none=" << sr.eval.counts.none << "\n";
    for (const GeoRegex& gr : sr.nc.regexes)
      os << "  rx " << gr.to_string() << " (" << gr.plan.to_string() << ")\n";
    for (const LearnedHint& lh : sr.learned)
      os << "  learned " << static_cast<int>(lh.type) << ":" << lh.code << "->" << lh.location
         << "\n";
    by_suffix[sr.suffix] = os.str();
  }
  std::ostringstream os;
  for (const auto& [suffix, body] : by_suffix) os << "== " << suffix << "\n" << body;
  return os.str();
}

HoihoResult run_streamed(std::size_t threads, std::size_t budget) {
  sim::StreamingWorldConfig config = small_config();
  config.batch_hostname_budget = budget;
  sim::StreamingWorld world(geo::builtin_dictionary(), config);
  HoihoConfig hc;
  hc.threads = threads;
  return Hoiho(geo::builtin_dictionary(), hc).run_stream(world);
}

TEST(RunStream, MatchesBatchRunOnTheSameWorld) {
  // One giant batch materializes the whole world; running that batch through
  // the classic path must learn the same conventions as streaming it.
  sim::StreamingWorldConfig config = small_config();
  config.batch_hostname_budget = 1u << 20;
  sim::StreamingWorld world(geo::builtin_dictionary(), config);
  auto batch = world.next_batch();
  ASSERT_TRUE(batch.has_value());
  EXPECT_EQ(world.next_batch(), std::nullopt) << "expected a single batch";

  HoihoConfig hc;
  hc.threads = 1;
  const Hoiho hoiho(geo::builtin_dictionary(), hc);
  const HoihoResult batched = hoiho.run(batch->topology, batch->pings);
  const HoihoResult streamed = run_streamed(1, 300);
  EXPECT_EQ(dump_compact(batched), dump_compact(streamed));
}

TEST(RunStream, OneAndEightThreadsProduceIdenticalResults) {
  const HoihoResult seq = run_streamed(1, 300);
  const HoihoResult par = run_streamed(8, 300);
  ASSERT_EQ(seq.suffixes.size(), par.suffixes.size());
  // Suffixes arrive in stream order on both paths; compare the full
  // sequence, not just the sorted dump.
  for (std::size_t i = 0; i < seq.suffixes.size(); ++i)
    EXPECT_EQ(seq.suffixes[i].suffix, par.suffixes[i].suffix) << "order diverged at " << i;
  EXPECT_EQ(dump_compact(seq), dump_compact(par));
}

TEST(RunStream, CompactsPerHostnamePayloads) {
  const HoihoResult streamed = run_streamed(2, 300);
  ASSERT_FALSE(streamed.suffixes.empty());
  for (const SuffixResult& sr : streamed.suffixes) {
    EXPECT_TRUE(sr.tagged.empty());
    EXPECT_TRUE(sr.eval.per_hostname.empty());
    EXPECT_GT(sr.hostname_count, 0u);  // aggregate counts survive compaction
  }
}

TEST(RunStream, ReportCarriesStreamIngestAndPoolMetrics) {
  sim::StreamingWorldConfig config = small_config();
  sim::StreamingWorld world(geo::builtin_dictionary(), config);
  HoihoConfig hc;
  hc.threads = 4;
  const RunReport report = Hoiho(geo::builtin_dictionary(), hc).run_stream_report(world);
  EXPECT_GT(report.metrics.value("pipeline_stream_batches"), 1u);
  EXPECT_GT(report.metrics.value("pipeline_suffixes"), 0u);
  EXPECT_EQ(report.metrics.value("ingest_records{source=\"stream\"}"), world.report().records);
  // The work-stealing pool executed every seeded task (only when the host
  // has the cores to spin it up — workers are clamped to hardware).
  if (util::ThreadPool::resolve(0) > 1) {
    const obs::Snapshot::Entry* executed = report.metrics.find("pipeline_pool_tasks_executed");
    ASSERT_NE(executed, nullptr);
    EXPECT_EQ(static_cast<std::uint64_t>(executed->gauge),
              report.metrics.value("pipeline_suffixes"));
  }
}

}  // namespace
}  // namespace hoiho::core
