// Unit tests for phase 4 (core/regex_sets.h) and stage 5 (core/rank.h).
#include <gtest/gtest.h>

#include <deque>

#include "core/apparent.h"
#include "core/rank.h"
#include "core/regex_sets.h"
#include "geo/dictionary.h"
#include "regex/parser.h"

namespace hoiho::core {
namespace {

class SetsTest : public ::testing::Test {
 protected:
  SetsTest() : dict_(geo::builtin_dictionary()), meas_({}, 64) {
    meas_.vps = {
        measure::VantagePoint{"was", "us", {38.91, -77.04}},
        measure::VantagePoint{"lon", "uk", {51.51, -0.13}},
        measure::VantagePoint{"tyo", "jp", {35.68, 139.69}},
        measure::VantagePoint{"fra", "de", {50.11, 8.68}},
        measure::VantagePoint{"sea", "us", {47.61, -122.33}},
    };
    meas_.pings = measure::RttMatrix(64, meas_.vps.size());
  }

  void add_near(std::string_view raw, measure::VpId vp, double rtt = 2.0) {
    const topo::RouterId r = next_router_++;
    for (measure::VpId v = 0; v < meas_.vps.size(); ++v)
      meas_.pings.record(r, v, v == vp ? rtt : 300.0);
    hostnames_.push_back(*dns::parse_hostname(raw, arena_));
    const ApparentTagger tagger(dict_, meas_, {});
    tagged_.push_back(tagger.tag(topo::HostnameRef{r, &hostnames_.back()}));
  }

  static GeoRegex geo_regex(std::string_view pattern, std::vector<Role> roles) {
    GeoRegex gr;
    gr.regex = *rx::parse(pattern);
    gr.plan.roles = std::move(roles);
    return gr;
  }

  const geo::GeoDictionary& dict_;
  measure::Measurements meas_;
  util::Arena arena_;  // backs hostnames_ (dns::Hostname is a view)
  std::deque<dns::Hostname> hostnames_;
  std::vector<TaggedHostname> tagged_;
  topo::RouterId next_router_ = 0;
};

TEST_F(SetsTest, BuildsMultiRegexNcForMixedFormats) {
  // An alter.net-style operator using IATA codes in one format and city
  // names in another (paper fig. 13): the builder must combine regexes.
  add_near("gw1.lhr16.alter.net", 1);
  add_near("gw2.nrt2.alter.net", 2);
  add_near("gw3.sea7.alter.net", 4);
  add_near("gw4.fra3.alter.net", 3);
  add_near("dialup-x.london.uk.alter.net", 1);
  add_near("dialup-y.frankfurt.de.alter.net", 3);
  add_near("dialup-z.tokyo.jp.alter.net", 2);

  std::vector<GeoRegex> regexes;
  regexes.push_back(geo_regex("^[^\\.]+\\.([a-z]{3})\\d+\\.alter\\.net$", {Role::kIata}));
  regexes.push_back(geo_regex("^[^\\.]+\\.([a-z]+)\\.([a-z]{2})\\.alter\\.net$",
                              {Role::kCityName, Role::kCountryCode}));

  const Evaluator ev(dict_, meas_);
  const NcBuilder builder(ev);
  const auto candidates = builder.build("alter.net", regexes, tagged_);
  ASSERT_FALSE(candidates.empty());
  // The best candidate covers all seven hostnames with two regexes.
  EXPECT_EQ(candidates[0].nc.regexes.size(), 2u);
  EXPECT_EQ(candidates[0].eval.counts.tp, 7u);
  EXPECT_EQ(candidates[0].eval.counts.atp(), 7);
}

TEST_F(SetsTest, RejectsRegexWithTooFewUniqueHints) {
  // The second regex only ever extracts two unique codes: it cannot join.
  add_near("gw1.lhr16.alter.net", 1);
  add_near("gw2.nrt2.alter.net", 2);
  add_near("gw3.sea7.alter.net", 4);
  add_near("dialup-x.london.uk.alter.net", 1);
  add_near("dialup-y.frankfurt.de.alter.net", 3);

  std::vector<GeoRegex> regexes;
  regexes.push_back(geo_regex("^[^\\.]+\\.([a-z]{3})\\d+\\.alter\\.net$", {Role::kIata}));
  regexes.push_back(geo_regex("^[^\\.]+\\.([a-z]+)\\.([a-z]{2})\\.alter\\.net$",
                              {Role::kCityName, Role::kCountryCode}));

  const Evaluator ev(dict_, meas_);
  const NcBuilder builder(ev);
  const auto candidates = builder.build("alter.net", regexes, tagged_);
  ASSERT_FALSE(candidates.empty());
  for (const auto& c : candidates) EXPECT_EQ(c.nc.regexes.size(), 1u);
}

TEST_F(SetsTest, DiscardsZeroTpRegexes) {
  add_near("gw1.lhr16.alter.net", 1);
  std::vector<GeoRegex> regexes;
  regexes.push_back(geo_regex("^[^\\.]+\\.([a-z]{3})\\d+\\.other\\.net$", {Role::kIata}));
  const Evaluator ev(dict_, meas_);
  const NcBuilder builder(ev);
  EXPECT_TRUE(builder.build("alter.net", regexes, tagged_).empty());
}

TEST(Classify, ThresholdsPerPaper) {
  RankConfig config;
  NcEvaluation e;
  e.counts.tp = 18;
  e.counts.fp = 1;  // PPV ~94.7%
  e.unique_tp_codes = {"a", "b", "c"};
  EXPECT_EQ(classify(e, config), NcClass::kGood);
  e.counts.fp = 3;  // PPV ~85.7%
  EXPECT_EQ(classify(e, config), NcClass::kPromising);
  e.counts.fp = 6;  // PPV 75%
  EXPECT_EQ(classify(e, config), NcClass::kPoor);
}

TEST(Classify, NeedsThreeUniqueHints) {
  NcEvaluation e;
  e.counts.tp = 50;
  e.unique_tp_codes = {"a", "b"};
  EXPECT_EQ(classify(e, {}), NcClass::kPoor);
  EXPECT_FALSE(is_usable(NcClass::kPoor));
  EXPECT_TRUE(is_usable(NcClass::kPromising));
  EXPECT_TRUE(is_usable(NcClass::kGood));
}

TEST(SelectBest, PrefersSimplerWithinMargin) {
  std::vector<NcBuilder::Candidate> candidates(2);
  candidates[0].nc.regexes.resize(3);
  candidates[0].eval.counts.tp = 20;
  candidates[1].nc.regexes.resize(1);
  candidates[1].eval.counts.tp = 18;  // within 3 TPs, fewer regexes
  const auto* best = select_best(candidates, {});
  ASSERT_NE(best, nullptr);
  EXPECT_EQ(best->nc.regexes.size(), 1u);
}

TEST(SelectBest, KeepsTopWhenMarginExceeded) {
  std::vector<NcBuilder::Candidate> candidates(2);
  candidates[0].nc.regexes.resize(3);
  candidates[0].eval.counts.tp = 20;
  candidates[1].nc.regexes.resize(1);
  candidates[1].eval.counts.tp = 10;
  const auto* best = select_best(candidates, {});
  ASSERT_NE(best, nullptr);
  EXPECT_EQ(best->nc.regexes.size(), 3u);
}

TEST(SelectBest, EmptyInput) {
  EXPECT_EQ(select_best({}, {}), nullptr);
}

}  // namespace
}  // namespace hoiho::core
