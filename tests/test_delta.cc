// Incremental relearning and versioned model deltas (DESIGN.md §16):
//
//   * byte-identity — across randomized churn (several seeds × fractions),
//     run_delta's merged result serializes byte-identically to a
//     from-scratch run over the churned world, and ModelStore::apply_delta
//     publishes a snapshot whose stored conventions re-serialize to the
//     same bytes;
//   * stale-base rejection — a delta diffed from a generation that is no
//     longer serving is rejected with the snapshot untouched;
//   * corrupt/torn deltas — truncation, bit flips, and a stripped checksum
//     footer all fail load_model_delta with a named error (the footer is
//     mandatory for deltas, unlike model files);
//   * concurrency — readers geolocating on pinned snapshots while deltas
//     apply observe no torn state (run under TSan in CI).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <sstream>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "core/delta.h"
#include "core/hoiho.h"
#include "core/nc_io.h"
#include "serve/model_store.h"
#include "sim/streaming.h"

namespace hoiho::core {
namespace {

sim::StreamingWorldConfig small_config() {
  sim::StreamingWorldConfig config;
  config.seed = 77;
  config.suffixes = 40;
  config.target_hostnames = 1200;
  config.max_hostnames_per_suffix = 256;
  config.vp_count = 16;
  config.batch_hostname_budget = 300;
  config.traits.geohint_scheme_rate = 0.8;
  config.traits.hostname_rate = 0.85;
  return config;
}

// The model-file contract: everything with a convention, kPoor included
// (the save path keeps them; only the Geolocator skips them).
std::vector<StoredConvention> model_stored(const HoihoResult& result) {
  std::vector<StoredConvention> stored;
  for (const SuffixResult& sr : result.suffixes)
    if (sr.has_nc()) stored.push_back(StoredConvention{sr.nc, sr.cls});
  return stored;
}

std::string serialized_model(std::vector<StoredConvention> stored) {
  sort_conventions(stored);
  std::ostringstream os;
  save_conventions(os, stored, geo::builtin_dictionary());
  return os.str();
}

// Renders the churned world's change feed: the churned suffixes as one
// self-contained batch plus the suffixes whose churned rendering left the
// world (no usable hostnames).
WorldDelta world_delta_for(sim::StreamingWorld& world) {
  WorldDelta wd;
  const std::vector<std::size_t> ks = world.churned_suffixes();
  wd.changed = world.render_batch(ks);
  std::unordered_set<std::string_view> present;
  for (const topo::SuffixGroup& g : wd.changed.groups) present.insert(g.suffix);
  for (const std::size_t k : ks) {
    std::string name = world.suffix_name(k);
    if (present.find(name) == present.end()) wd.removed.push_back(std::move(name));
  }
  return wd;
}

struct DeltaFixture {
  HoihoConfig config;
  std::vector<StoredConvention> base_stored;
  PriorRun prior;
  ModelDelta delta;          // run_delta's output against generation 1
  std::string full_bytes;    // from-scratch serialization of the churned world
  std::string merged_bytes;  // run_delta's merged result, serialized
  DeltaRunReport report;
};

DeltaFixture make_fixture(std::uint64_t churn_seed, double churn_frac) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  DeltaFixture fx;
  fx.config.threads = 2;
  const Hoiho hoiho(dict, fx.config);

  const sim::StreamingWorldConfig base_swc = small_config();
  sim::StreamingWorld base_world(dict, base_swc);
  HoihoResult base_result = hoiho.run_stream(base_world);
  fx.base_stored = model_stored(base_result);
  fx.prior = PriorRun::capture(std::move(base_result), fx.config, dict.size(),
                               base_world.vps(), /*generation=*/1);

  sim::StreamingWorldConfig churned_swc = base_swc;
  churned_swc.churn_seed = churn_seed;
  churned_swc.churn_frac = churn_frac;
  sim::StreamingWorld full_world(dict, churned_swc);
  fx.full_bytes = serialized_model(model_stored(hoiho.run_stream(full_world)));

  sim::StreamingWorld delta_world(dict, churned_swc);
  const WorldDelta wd = world_delta_for(delta_world);
  fx.report = hoiho.run_delta(wd, fx.prior);
  fx.delta = fx.report.delta;
  if (fx.report.ok()) fx.merged_bytes = serialized_model(model_stored(fx.report.result));
  return fx;
}

TEST(Delta, ByteIdentityAcrossRandomizedChurn) {
  for (const std::uint64_t seed : {1u, 4242u}) {
    for (const double frac : {0.1, 0.4}) {
      const DeltaFixture fx = make_fixture(seed, frac);
      ASSERT_TRUE(fx.report.ok()) << fx.report.error;
      // Some suffix actually changed at these fractions.
      EXPECT_GT(fx.report.dirty + fx.report.added + fx.report.removed, 0u)
          << "seed=" << seed << " frac=" << frac;
      // The change feed holds only churned suffixes, so nothing in it can
      // fingerprint-match the prior (reused counts matches in the feed).
      EXPECT_EQ(fx.report.reused, 0u);
      // The merged result is what a from-scratch run would have produced.
      EXPECT_EQ(fx.merged_bytes, fx.full_bytes) << "seed=" << seed << " frac=" << frac;
      EXPECT_EQ(fx.delta.base_generation, 1u);
    }
  }
}

TEST(Delta, UnchangedSuffixesInTheFeedAreReused) {
  // A change feed that over-approximates (includes suffixes that did not
  // actually change) exercises the fingerprint short-circuit: unchanged
  // entries are reused verbatim, never relearned, and the delta stays
  // scoped to the real changes.
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  HoihoConfig config;
  config.threads = 2;
  const Hoiho hoiho(dict, config);

  const sim::StreamingWorldConfig base_swc = small_config();
  sim::StreamingWorld base_world(dict, base_swc);
  HoihoResult base_result = hoiho.run_stream(base_world);
  const PriorRun prior = PriorRun::capture(std::move(base_result), config, dict.size(),
                                           base_world.vps(), /*generation=*/1);

  sim::StreamingWorldConfig churned_swc = base_swc;
  churned_swc.churn_seed = 4242;
  churned_swc.churn_frac = 0.2;
  sim::StreamingWorld delta_world(dict, churned_swc);

  // Feed every suffix, churned or not.
  std::vector<std::size_t> all(churned_swc.suffixes);
  for (std::size_t k = 0; k < all.size(); ++k) all[k] = k;
  WorldDelta wd;
  wd.changed = delta_world.render_batch(all);

  const DeltaRunReport rep = hoiho.run_delta(wd, prior);
  ASSERT_TRUE(rep.ok()) << rep.error;
  EXPECT_GT(rep.reused, 0u);
  EXPECT_GT(rep.dirty, 0u);
  EXPECT_LT(rep.dirty, wd.changed.groups.size());
  // Only the churned suffixes can appear in the delta.
  const std::size_t churned = delta_world.churned_suffixes().size();
  EXPECT_LE(rep.delta.upserts.size() + rep.delta.removes.size(), churned + rep.added);
}

TEST(Delta, ZeroChurnProducesEmptyDeltaAndFullReuse) {
  const DeltaFixture fx = make_fixture(9, 0.0);
  ASSERT_TRUE(fx.report.ok()) << fx.report.error;
  EXPECT_EQ(fx.report.dirty, 0u);
  EXPECT_EQ(fx.report.added, 0u);
  EXPECT_EQ(fx.report.removed, 0u);
  EXPECT_TRUE(fx.delta.empty());
  EXPECT_EQ(fx.merged_bytes, fx.full_bytes);
}

TEST(Delta, MismatchedSignaturesRefuseToRun) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  const DeltaFixture fx = make_fixture(3, 0.2);
  ASSERT_TRUE(fx.report.ok()) << fx.report.error;

  sim::StreamingWorldConfig churned_swc = small_config();
  churned_swc.churn_seed = 3;
  churned_swc.churn_frac = 0.2;
  sim::StreamingWorld world(dict, churned_swc);
  const WorldDelta wd = world_delta_for(world);

  // A knob that shapes learned output invalidates the prior...
  HoihoConfig other = fx.config;
  other.min_tagged_hostnames = fx.config.min_tagged_hostnames + 3;
  const DeltaRunReport bad = Hoiho(dict, other).run_delta(wd, fx.prior);
  EXPECT_FALSE(bad.ok());

  // ...but an output-invariant one (threads) does not.
  HoihoConfig rethreaded = fx.config;
  rethreaded.threads = 1;
  const DeltaRunReport good = Hoiho(dict, rethreaded).run_delta(wd, fx.prior);
  EXPECT_TRUE(good.ok()) << good.error;
}

TEST(Delta, ApplyDeltaPublishesFromScratchBytes) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  const DeltaFixture fx = make_fixture(4242, 0.25);
  ASSERT_TRUE(fx.report.ok()) << fx.report.error;

  serve::ModelStore store(dict);
  store.install(fx.base_stored);
  const std::uint64_t base_gen = store.generation();

  ModelDelta delta = fx.delta;
  delta.base_generation = base_gen;
  serve::ModelStore::DeltaApply applied;
  const auto err = store.apply_delta(delta, &applied);
  ASSERT_FALSE(err.has_value()) << *err;
  EXPECT_EQ(applied.base_generation, base_gen);
  EXPECT_EQ(applied.new_generation, store.generation());
  EXPECT_GT(store.generation(), base_gen);
  EXPECT_EQ(serialized_model(store.current()->stored), fx.full_bytes);
}

TEST(Delta, StaleBaseGenerationIsRejected) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  const DeltaFixture fx = make_fixture(7, 0.2);
  ASSERT_TRUE(fx.report.ok()) << fx.report.error;

  serve::ModelStore store(dict);
  store.install(fx.base_stored);
  const std::uint64_t base_gen = store.generation();
  const auto before = store.current();

  ModelDelta stale = fx.delta;
  stale.base_generation = base_gen + 5;
  const auto err = store.apply_delta(stale);
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("generation"), std::string::npos) << *err;
  // The serving snapshot did not move.
  EXPECT_EQ(store.generation(), base_gen);
  EXPECT_EQ(store.current().get(), before.get());
}

TEST(Delta, RemovingAnAbsentSuffixIsRejected) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  const DeltaFixture fx = make_fixture(8, 0.2);
  ASSERT_TRUE(fx.report.ok()) << fx.report.error;

  serve::ModelStore store(dict);
  store.install(fx.base_stored);
  const std::uint64_t base_gen = store.generation();

  ModelDelta bad;
  bad.base_generation = base_gen;
  bad.removes.push_back("never-in-the-model.example.net");
  const auto err = store.apply_delta(bad);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(store.generation(), base_gen);
}

TEST(Delta, SerializationRoundTripsAndRejectsCorruption) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  const DeltaFixture fx = make_fixture(4242, 0.25);
  ASSERT_TRUE(fx.report.ok()) << fx.report.error;
  ASSERT_FALSE(fx.delta.empty());

  const std::string bytes = serialize_model_delta(fx.delta, dict);
  ASSERT_TRUE(is_model_delta(bytes));

  // Round trip.
  {
    std::istringstream in(bytes);
    std::string error;
    io::LoadReport report;
    const auto loaded = load_model_delta(in, dict, &error, nullptr, {}, &report);
    ASSERT_TRUE(loaded.has_value()) << error;
    EXPECT_TRUE(report.ok());
    EXPECT_EQ(loaded->base_generation, fx.delta.base_generation);
    EXPECT_EQ(loaded->removes, fx.delta.removes);
    ASSERT_EQ(loaded->upserts.size(), fx.delta.upserts.size());
    EXPECT_EQ(serialize_model_delta(*loaded, dict), bytes);
  }

  const auto expect_rejected = [&](const std::string& mutated, const char* what) {
    std::istringstream in(mutated);
    std::string error;
    io::LoadReport report;
    const auto loaded = load_model_delta(in, dict, &error, nullptr, {}, &report);
    EXPECT_FALSE(loaded.has_value()) << what;
    EXPECT_FALSE(error.empty()) << what;
    EXPECT_FALSE(report.ok()) << what;
  };

  // Torn: truncation anywhere loses the footer (or tears a record).
  expect_rejected(bytes.substr(0, bytes.size() / 2), "truncated");
  // Corrupt: a flipped byte in a record fails the checksum.
  {
    std::string flipped = bytes;
    flipped[bytes.size() / 3] ^= 0x20;
    expect_rejected(flipped, "bit flip");
  }
  // Stripped footer: unlike model files, a delta REQUIRES it.
  {
    const std::size_t footer = bytes.rfind("# checksum");
    ASSERT_NE(footer, std::string::npos);
    expect_rejected(bytes.substr(0, footer), "missing footer");
  }
}

TEST(Delta, ApplyUnderConcurrentReaders) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  const DeltaFixture fx = make_fixture(4242, 0.25);
  ASSERT_TRUE(fx.report.ok()) << fx.report.error;
  ASSERT_FALSE(fx.delta.upserts.empty());

  serve::ModelStore store(dict);
  store.install(fx.base_stored);

  // Readers hammer pinned snapshots while the writer re-applies a
  // back-and-forth delta stream; every snapshot a reader holds must stay
  // internally consistent (generation, stored list, geolocator agree).
  std::atomic<bool> stop{false};
  std::atomic<std::size_t> lookups{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        const auto snap = store.current();
        for (const StoredConvention& sc : snap->stored) {
          snap->geolocator.locate(sc.nc.suffix);  // pinned snapshot: safe
          lookups.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  // Writer: alternate "apply the churn delta" / "revert to base" — both are
  // upsert/remove merges against whatever is currently serving.
  std::size_t applies = 0;
  for (int round = 0; round < 6; ++round) {
    const bool forward = (round % 2) == 0;
    ModelDelta delta;
    delta.base_generation = store.generation();
    if (forward) {
      delta = fx.delta;
      delta.base_generation = store.generation();
    } else {
      // Revert: upsert the base content for every suffix the delta touched,
      // remove the ones it added.
      std::unordered_set<std::string_view> base_suffixes;
      for (const StoredConvention& sc : fx.base_stored) base_suffixes.insert(sc.nc.suffix);
      for (const StoredConvention& sc : fx.delta.upserts)
        if (base_suffixes.find(sc.nc.suffix) == base_suffixes.end())
          delta.removes.push_back(sc.nc.suffix);
      // Suffixes the forward delta removed come back with base content via
      // the full base upsert.
      for (const StoredConvention& sc : fx.base_stored) delta.upserts.push_back(sc);
      sort_conventions(delta.upserts);
      std::sort(delta.removes.begin(), delta.removes.end());
    }
    const auto err = store.apply_delta(delta);
    ASSERT_FALSE(err.has_value()) << *err;
    ++applies;
  }
  // Under a loaded host the readers may not have been scheduled yet; the
  // overlap assertion below needs them to have actually read something.
  while (lookups.load(std::memory_order_relaxed) == 0)
    std::this_thread::yield();
  stop.store(true);
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(applies, 6u);
  EXPECT_GT(lookups.load(), 0u);
  // Ends on a revert: serving content is the base again.
  EXPECT_EQ(serialized_model(store.current()->stored), serialized_model(fx.base_stored));
}

TEST(Delta, FingerprintsAreContentDerived) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  sim::StreamingWorldConfig swc = small_config();
  sim::StreamingWorld a(dict, swc);
  sim::StreamingWorld b(dict, swc);
  const auto batch_a = a.next_batch();
  const auto batch_b = b.next_batch();
  ASSERT_TRUE(batch_a.has_value());
  ASSERT_TRUE(batch_b.has_value());
  ASSERT_EQ(batch_a->groups.size(), batch_b->groups.size());
  for (std::size_t i = 0; i < batch_a->groups.size(); ++i) {
    const std::uint64_t fa = suffix_fingerprint(batch_a->groups[i], batch_a->pings);
    const std::uint64_t fb = suffix_fingerprint(batch_b->groups[i], batch_b->pings);
    EXPECT_NE(fa, 0u);  // 0 is the "unknown" sentinel, never produced
    EXPECT_EQ(fa, fb);  // same content, same fingerprint
  }
}

}  // namespace
}  // namespace hoiho::core
