// Unit tests for measure/rtt_matrix.h and measure/consistency.h.
#include <gtest/gtest.h>

#include "measure/consistency.h"
#include "measure/rtt_matrix.h"

namespace hoiho::measure {
namespace {

const geo::Coordinate kDc{38.91, -77.04};       // Washington DC
const geo::Coordinate kAshburn{39.04, -77.49};  // ~35 km from DC
const geo::Coordinate kNashua{42.77, -71.47};   // ~620 km from DC
const geo::Coordinate kLondon{51.51, -0.13};

Measurements one_vp_setup(double rtt_ms) {
  Measurements meas({VantagePoint{"was", "us", kDc}}, 1);
  meas.pings.record(0, 0, rtt_ms);
  return meas;
}

TEST(RttMatrix, RecordsMinimum) {
  RttMatrix m(2, 2);
  m.record(0, 1, 10.0);
  m.record(0, 1, 7.0);
  m.record(0, 1, 9.0);
  ASSERT_TRUE(m.rtt(0, 1).has_value());
  EXPECT_DOUBLE_EQ(*m.rtt(0, 1), 7.0);
}

TEST(RttMatrix, KeepsMinimumRegardlessOfArrivalOrder) {
  RttMatrix ascending(1, 1), descending(1, 1);
  for (double rtt : {3.0, 5.0, 9.0}) ascending.record(0, 0, rtt);
  for (double rtt : {9.0, 5.0, 3.0}) descending.record(0, 0, rtt);
  EXPECT_DOUBLE_EQ(*ascending.rtt(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(*descending.rtt(0, 0), 3.0);
}

TEST(RttMatrix, RecordingOnePairLeavesOthersUntouched) {
  RttMatrix m(2, 2);
  m.record(1, 0, 4.0);
  EXPECT_FALSE(m.rtt(0, 0).has_value());
  EXPECT_FALSE(m.rtt(0, 1).has_value());
  EXPECT_FALSE(m.rtt(1, 1).has_value());
  EXPECT_DOUBLE_EQ(*m.rtt(1, 0), 4.0);
}

TEST(RttMatrix, ZeroRttIsAValidSample) {
  // 0 ms must not be confused with the missing-sample sentinel.
  RttMatrix m(1, 1);
  m.record(0, 0, 0.0);
  ASSERT_TRUE(m.rtt(0, 0).has_value());
  EXPECT_DOUBLE_EQ(*m.rtt(0, 0), 0.0);
  EXPECT_TRUE(m.responsive(0));
}

TEST(RttMatrix, MissingSamples) {
  RttMatrix m(2, 2);
  EXPECT_FALSE(m.rtt(1, 1).has_value());
  EXPECT_FALSE(m.responsive(1));
  EXPECT_EQ(m.sample_count(1), 0u);
  EXPECT_FALSE(m.closest_vp(1).has_value());
}

TEST(RttMatrix, ClosestVp) {
  RttMatrix m(1, 3);
  m.record(0, 0, 30.0);
  m.record(0, 2, 5.0);
  const auto closest = m.closest_vp(0);
  ASSERT_TRUE(closest.has_value());
  EXPECT_EQ(closest->first, 2u);
  EXPECT_DOUBLE_EQ(closest->second, 5.0);
  EXPECT_EQ(m.sample_count(0), 2u);
}

TEST(RttMatrix, ResponsiveRouterCount) {
  RttMatrix m(3, 1);
  m.record(0, 0, 1.0);
  m.record(2, 0, 2.0);
  EXPECT_EQ(m.responsive_router_count(), 2u);
}

TEST(Consistency, NearLocationConsistent) {
  // 1 ms from DC reaches ~100 km: Ashburn (35 km) is feasible.
  const Measurements meas = one_vp_setup(1.0);
  EXPECT_TRUE(rtt_consistent(meas.pings, meas.vps, 0, kAshburn));
}

TEST(Consistency, FarLocationInconsistent) {
  // Nashua is ~620 km from DC: needs >= ~6.2 ms.
  const Measurements meas = one_vp_setup(3.0);
  EXPECT_FALSE(rtt_consistent(meas.pings, meas.vps, 0, kNashua));
  EXPECT_TRUE(rtt_consistent(one_vp_setup(7.0).pings, meas.vps, 0, kNashua));
}

TEST(Consistency, SlackLoosens) {
  const Measurements meas = one_vp_setup(3.0);
  EXPECT_FALSE(rtt_consistent(meas.pings, meas.vps, 0, kNashua, 0.0));
  EXPECT_TRUE(rtt_consistent(meas.pings, meas.vps, 0, kNashua, 5.0));
}

TEST(Consistency, NoSamplesVacuouslyConsistent) {
  Measurements meas({VantagePoint{"was", "us", kDc}}, 1);
  EXPECT_TRUE(rtt_consistent(meas.pings, meas.vps, 0, kLondon));
}

TEST(Consistency, InvalidLocationNeverConsistent) {
  Measurements meas({VantagePoint{"was", "us", kDc}}, 1);
  EXPECT_FALSE(rtt_consistent(meas.pings, meas.vps, 0, geo::Coordinate::invalid()));
}

TEST(Consistency, AllVpsMustAgree) {
  // Paper fig. 3a: the DC VP's 3 ms sample refutes Las Vegas even though a
  // far VP's large RTT would allow it.
  Measurements meas({VantagePoint{"was", "us", kDc}, VantagePoint{"lon", "uk", kLondon}}, 1);
  meas.pings.record(0, 0, 3.0);
  meas.pings.record(0, 1, 80.0);
  const geo::Coordinate las_vegas{36.17, -115.14};
  EXPECT_FALSE(rtt_consistent(meas.pings, meas.vps, 0, las_vegas));
  EXPECT_TRUE(rtt_consistent(meas.pings, meas.vps, 0, kAshburn));
}

TEST(Violation, ReportsWorstDeficit) {
  Measurements meas({VantagePoint{"was", "us", kDc}, VantagePoint{"lon", "uk", kLondon}}, 1);
  meas.pings.record(0, 0, 1.0);
  meas.pings.record(0, 1, 1.0);  // impossible: London is ~5900 km from DC-area
  const auto v = worst_violation(meas.pings, meas.vps, 0, kAshburn);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->vp, 1u);  // the London constraint is violated hardest
  EXPECT_GT(v->deficit_ms, 30.0);
}

TEST(Violation, NoneWhenConsistent) {
  const Measurements meas = one_vp_setup(1.0);
  EXPECT_FALSE(worst_violation(meas.pings, meas.vps, 0, kAshburn).has_value());
}

}  // namespace
}  // namespace hoiho::measure
