// Unit tests for dns/hostname.h.
#include "dns/hostname.h"

#include <gtest/gtest.h>

namespace hoiho::dns {
namespace {

TEST(ValidHostname, AcceptsRouterNames) {
  EXPECT_TRUE(valid_hostname("xe-0-0.gw1.sfo16.alter.net"));
  EXPECT_TRUE(valid_hostname("100ge1-2.core1.ash1.he.net"));
  EXPECT_TRUE(valid_hostname("a_b.example.net"));  // underscores occur in PTRs
}

TEST(ValidHostname, RejectsMalformed) {
  EXPECT_FALSE(valid_hostname(""));
  EXPECT_FALSE(valid_hostname(".leading.net"));
  EXPECT_FALSE(valid_hostname("trailing.net."));
  EXPECT_FALSE(valid_hostname("dou..ble.net"));
  EXPECT_FALSE(valid_hostname("Upper.Case.net"));  // expects canonical lower-case
  EXPECT_FALSE(valid_hostname("spa ce.net"));
  EXPECT_FALSE(valid_hostname(std::string(64, 'a') + ".net"));  // label > 63
  EXPECT_FALSE(valid_hostname(std::string(300, 'a')));
}

TEST(ParseHostname, CanonicalizesCase) {
  util::Arena arena;
  const auto h = parse_hostname("Core1.ASH1.He.Net", arena);
  ASSERT_TRUE(h.has_value());
  EXPECT_EQ(h->full, "core1.ash1.he.net");
}

TEST(ParseHostname, SuffixAndPrefix) {
  std::string storage;
  const auto h = parse_hostname("xe-0-0-ash1-bcr1.bb.ebay.com", storage);
  ASSERT_TRUE(h.has_value());
  EXPECT_EQ(h->suffix(), "ebay.com");
  EXPECT_EQ(h->prefix(), "xe-0-0-ash1-bcr1.bb");
}

TEST(ParseHostname, ApexHasEmptyPrefix) {
  std::string storage;
  const auto h = parse_hostname("ebay.com", storage);
  ASSERT_TRUE(h.has_value());
  EXPECT_EQ(h->suffix(), "ebay.com");
  EXPECT_EQ(h->prefix(), "");
  EXPECT_TRUE(h->labels().empty());
}

TEST(ParseHostname, RejectsUnknownTld) {
  util::Arena arena;
  EXPECT_FALSE(parse_hostname("router.something.invalidtld", arena).has_value());
  // Rejects leave no residue in the arena.
  EXPECT_EQ(arena.bytes_used(), 0u);
}

TEST(ParseHostname, LabelsCarryPositionsInFull) {
  util::Arena arena;
  const auto h = parse_hostname("gw1.sfo16.alter.net", arena);
  ASSERT_TRUE(h.has_value());
  const auto labels = h->labels();
  ASSERT_EQ(labels.size(), 2u);
  EXPECT_EQ(labels[0].text, "gw1");
  EXPECT_EQ(labels[1].text, "sfo16");
  EXPECT_EQ(labels[1].begin, 4u);
  EXPECT_EQ(h->full.substr(labels[1].begin, labels[1].size()), "sfo16");
}

TEST(ParseHostname, CustomPsl) {
  PublicSuffixList psl;
  psl.add_rule("lab");
  std::string storage;
  const auto h = parse_hostname("r1.group.lab", storage, psl);
  ASSERT_TRUE(h.has_value());
  EXPECT_EQ(h->suffix(), "group.lab");
}

}  // namespace
}  // namespace hoiho::dns
