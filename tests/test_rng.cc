// Unit tests for util/rng.h — determinism and distribution sanity.
#include "util/rng.h"

#include <gtest/gtest.h>

#include <set>

namespace hoiho::util {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.next_below(13), 13u);
}

TEST(Rng, NextIntInclusiveBounds) {
  Rng r(7);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.next_int(3, 5);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 5);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 3u);  // all three values appear
}

TEST(Rng, NextDoubleUnitInterval) {
  Rng r(9);
  for (int i = 0; i < 1000; ++i) {
    const double v = r.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, NextRangeBounds) {
  Rng r(11);
  for (int i = 0; i < 1000; ++i) {
    const double v = r.next_range(1.15, 2.2);
    EXPECT_GE(v, 1.15);
    EXPECT_LT(v, 2.2);
  }
}

TEST(Rng, BoolProbabilityRoughlyHolds) {
  Rng r(13);
  int hits = 0;
  for (int i = 0; i < 10000; ++i)
    if (r.next_bool(0.3)) ++hits;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Rng, ParetoAtLeastScale) {
  Rng r(17);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(r.next_pareto(4.0, 1.1), 4.0);
}

TEST(Rng, WeightedRespectsZeroWeights) {
  Rng r(19);
  const std::vector<double> w = {0.0, 1.0, 0.0};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(r.next_weighted(w), 1u);
}

TEST(Rng, WeightedProportions) {
  Rng r(23);
  const std::vector<double> w = {1.0, 3.0};
  int second = 0;
  for (int i = 0; i < 10000; ++i)
    if (r.next_weighted(w) == 1) ++second;
  EXPECT_NEAR(second / 10000.0, 0.75, 0.03);
}

TEST(Rng, ShufflePermutes) {
  Rng r(29);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  r.shuffle(v);
  std::multiset<int> a(v.begin(), v.end()), b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

TEST(Rng, GaussRoughMoments) {
  Rng r(31);
  double sum = 0, sum2 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = r.next_gauss(10.0, 2.0);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

}  // namespace
}  // namespace hoiho::util
