// Determinism of the parallel pipeline: Hoiho::run with threads=1 and
// threads=8 must produce identical HoihoResults on a multi-operator world,
// and the consistency cache must not change any verdict. Equality is
// checked on an exhaustive textual dump of every field the pipeline emits.
#include <gtest/gtest.h>

#include <sstream>

#include "core/hoiho.h"
#include "sim/probing.h"

namespace hoiho::core {
namespace {

void dump_eval(std::ostream& os, const NcEvaluation& ev) {
  os << "counts tp=" << ev.counts.tp << " fp=" << ev.counts.fp << " fn=" << ev.counts.fn
     << " unk=" << ev.counts.unk << " none=" << ev.counts.none << "\n";
  os << "unique:";
  for (const std::string& code : ev.unique_tp_codes) os << " " << code;
  os << "\n";
  for (std::size_t i = 0; i < ev.regex_unique_tp.size(); ++i) {
    os << "regex" << i << ":";
    for (const std::string& code : ev.regex_unique_tp[i]) os << " " << code;
    os << "\n";
  }
  for (const HostnameEval& h : ev.per_hostname) {
    os << "  " << to_string(h.outcome) << " rx=" << h.regex_index << " code=" << h.code
       << " cc=" << h.cc << " st=" << h.st << " best=" << h.best_location
       << " learned=" << h.via_learned << " locs=";
    for (geo::LocationId id : h.locations) os << id << ",";
    os << "\n";
  }
}

// Every semantic field of the result (fingerprints are compared separately
// so their determinism is asserted on its own).
std::string dump(const HoihoResult& result) {
  std::ostringstream os;
  for (const SuffixResult& sr : result.suffixes) {
    os << "== " << sr.suffix << " hostnames=" << sr.hostname_count
       << " tagged=" << sr.tagged_count << " cls=" << to_string(sr.cls) << "\n";
    for (const TaggedHostname& th : sr.tagged) {
      os << " host " << th.ref.router << " " << th.ref.hostname->full << "\n";
      for (const ApparentHint& h : th.hints) {
        os << "  hint " << to_string(h.role) << " " << h.code << " [" << h.begin << ","
           << h.end << ") split=" << h.split_clli << " locs=";
        for (geo::LocationId id : h.locations) os << id << ",";
        for (const HintAnnotation& a : h.annotations)
          os << " ann=" << to_string(a.role) << ":" << a.code << "[" << a.begin << "," << a.end
             << ")";
        os << "\n";
      }
    }
    os << "nc " << sr.nc.suffix << " regexes=";
    for (const GeoRegex& gr : sr.nc.regexes) os << gr.to_string() << "(" << gr.plan.to_string()
                                                << ") ";
    os << "\n";
    for (const auto& [key, loc] : sr.nc.learned)
      os << " learned-map " << static_cast<int>(key.first) << ":" << key.second << "->" << loc
         << "\n";
    for (const LearnedHint& lh : sr.learned)
      os << " learned " << static_cast<int>(lh.type) << ":" << lh.code << "->" << lh.location
         << " tp=" << lh.tp << " fp=" << lh.fp << " existing=" << lh.existing_tp << "\n";
    dump_eval(os, sr.eval);
  }
  return os.str();
}

std::string dump_fingerprints(const HoihoResult& result) {
  std::ostringstream os;
  for (const SuffixResult& sr : result.suffixes)
    os << sr.suffix << " fp=" << sr.fingerprint << "\n";
  return os.str();
}

struct Fixture {
  sim::World world;
  measure::Measurements meas;

  Fixture() {
    sim::WorldConfig config;
    config.seed = 4242;
    config.operators = 16;
    config.geohint_scheme_rate = 0.9;
    config.hostname_rate = 0.85;
    world = sim::generate_world(geo::builtin_dictionary(), config);
    meas = sim::probe_pings(world, {});
  }

  HoihoResult run(std::size_t threads, bool cache = true) const {
    HoihoConfig config;
    config.threads = threads;
    config.consistency_cache = cache;
    return Hoiho(geo::builtin_dictionary(), config).run(world.topology, meas);
  }
};

const Fixture& fixture() {
  static const Fixture f;
  return f;
}

TEST(HoihoParallel, OneAndEightThreadsProduceIdenticalResults) {
  const HoihoResult seq = fixture().run(1);
  const HoihoResult par = fixture().run(8);
  ASSERT_EQ(seq.suffixes.size(), par.suffixes.size());
  EXPECT_EQ(dump(seq), dump(par));
  // Content fingerprints are input-derived, so scheduling cannot move them.
  EXPECT_EQ(dump_fingerprints(seq), dump_fingerprints(par));
  EXPECT_EQ(seq.geolocated_router_count(), par.geolocated_router_count());
}

TEST(HoihoParallel, RepeatedParallelRunsAreStable) {
  const HoihoResult a = fixture().run(8);
  const HoihoResult b = fixture().run(8);
  EXPECT_EQ(dump(a), dump(b));
  EXPECT_EQ(dump_fingerprints(a), dump_fingerprints(b));
}

TEST(HoihoParallel, CacheDoesNotChangeVerdicts) {
  const HoihoResult cached = fixture().run(1, /*cache=*/true);
  const HoihoResult uncached = fixture().run(1, /*cache=*/false);
  EXPECT_EQ(dump(cached), dump(uncached));
  // Fingerprints hash inputs, not execution strategy, so they match too.
  EXPECT_EQ(dump_fingerprints(cached), dump_fingerprints(uncached));
}

TEST(HoihoParallel, HardwareThreadsKnob) {
  // threads=0 resolves to hardware concurrency and still matches sequential.
  const HoihoResult hw = fixture().run(0);
  const HoihoResult seq = fixture().run(1);
  EXPECT_EQ(dump(hw), dump(seq));
}

}  // namespace
}  // namespace hoiho::core
