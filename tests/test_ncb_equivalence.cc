// Reload-equivalence suite (DESIGN.md §15): the three model load paths —
// text parse, ncb heap load, ncb mmap — must produce *byte-identical*
// answers. Divergence here means a served answer silently depends on which
// format the deploy shipped, which is the one bug the binary format is not
// allowed to have. Coverage:
//   - a canary corpus of structured hostnames, field-by-field;
//   - 10k randomized hostnames (structured hits, near-misses, garbage),
//     compared on the wire format the server would emit;
//   - ModelStore-level: the same file answers identically whether reloaded
//     as text, heap ncb, or mmap ncb, with snapshot format labels to match;
//   - 8 reader threads hammering lookups through repeated mmap hot swaps
//     (run under TSan in CI): a pinned snapshot must keep its mapping alive
//     across any number of reloads.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/geolocate.h"
#include "core/nc_io.h"
#include "core/ncb.h"
#include "regex/parser.h"
#include "serve/model_store.h"
#include "serve/protocol.h"
#include "util/rng.h"

namespace hoiho {
namespace {

using core::GeoRegex;
using core::Geolocator;
using core::NcClass;
using core::Role;
using core::StoredConvention;

geo::LocationId find_city(const geo::GeoDictionary& dict, std::string_view city,
                          std::string_view country, std::string_view state = "") {
  for (geo::LocationId id :
       dict.lookup(geo::HintType::kCityName, geo::squash_place_name(city))) {
    if (!geo::same_country(dict.location(id).country, country)) continue;
    if (!state.empty() && dict.location(id).state != state) continue;
    return id;
  }
  return geo::kInvalidLocation;
}

// A corpus model wide enough to exercise every role family the extractor
// serializes: IATA with learned overrides, CLLI pairs with country codes,
// multi-regex suffixes, and a kPoor block the serving build must skip.
std::vector<StoredConvention> corpus_model(const geo::GeoDictionary& dict) {
  std::vector<StoredConvention> out(5);

  out[0].nc.suffix = "he.net";
  out[0].cls = NcClass::kGood;
  GeoRegex a;
  a.regex = *rx::parse("^.+\\.([a-z]{3})\\d+\\.he\\.net$");
  a.plan.roles = {Role::kIata};
  out[0].nc.regexes.push_back(std::move(a));
  GeoRegex a2;
  a2.regex = *rx::parse("^([a-z]{3})\\d*\\.he\\.net$");
  a2.plan.roles = {Role::kIata};
  out[0].nc.regexes.push_back(std::move(a2));
  out[0].nc.learned[{geo::HintType::kIata, "ash"}] = find_city(dict, "Ashburn", "us", "va");

  out[1].nc.suffix = "windstream.net";
  out[1].cls = NcClass::kPromising;
  GeoRegex b;
  b.regex = *rx::parse("^.+\\.([a-z]{4})\\d+-([a-z]{2})\\.([a-z]{2})\\.windstream\\.net$");
  b.plan.roles = {Role::kClli4, Role::kClli2, Role::kCountryCode};
  out[1].nc.regexes.push_back(std::move(b));

  out[2].nc.suffix = "zayo.com";
  out[2].cls = NcClass::kGood;
  GeoRegex c;
  c.regex = *rx::parse("^([a-z]{3})\\d+\\.zayo\\.com$");
  c.plan.roles = {Role::kIata};
  out[2].nc.regexes.push_back(std::move(c));

  out[3].nc.suffix = "cogentco.com";
  out[3].cls = NcClass::kPromising;
  GeoRegex d;
  d.regex = *rx::parse("^.+\\.([a-z]{3})\\d+\\.([a-z]{2})\\.cogentco\\.com$");
  d.plan.roles = {Role::kIata, Role::kCountryCode};
  out[3].nc.regexes.push_back(std::move(d));

  out[4].nc.suffix = "poor.example";
  out[4].cls = NcClass::kPoor;
  GeoRegex e;
  e.regex = *rx::parse("^([a-z]{3})\\.poor\\.example$");
  e.plan.roles = {Role::kIata};
  out[4].nc.regexes.push_back(std::move(e));
  return out;
}

// Fixed canary corpus: known hits (learned and dictionary-resolved),
// near-misses, and empty/garbage edges.
const std::vector<std::string>& canary_corpus() {
  static const std::vector<std::string> hosts = {
      "100ge1.core1.ash2.he.net",
      "10ge.sea1.he.net",
      "lhr1.he.net",
      "ash.he.net",
      "ge0.unknown.he.net",
      "r1.rest4501-ge.va.windstream.net",
      "r1.hstntx01-ge.tx.windstream.net",
      "lax1.zayo.com",
      "zzz9.zayo.com",
      "te0.jfk2.us.cogentco.com",
      "abc.poor.example",
      "nope.example.org",
      "",
      "x.he.net",
  };
  return hosts;
}

std::string random_host(util::Rng& rng) {
  const auto letters = [&rng](std::size_t n) {
    std::string s;
    for (std::size_t i = 0; i < n; ++i)
      s += static_cast<char>('a' + rng.next_u64() % 26);
    return s;
  };
  const auto digit = [&rng] { return std::to_string(rng.next_u64() % 10); };
  // Half the structured probes use known-resolvable codes so the hit path
  // gets real coverage; the rest are uniform 3-letter codes (mostly misses,
  // a few accidental dictionary hits — exactly the ambiguity we want).
  const auto code = [&](std::size_t n) -> std::string {
    static const char* kKnown[] = {"ash", "lhr", "lax", "jfk", "sea", "ord", "fra", "ams"};
    if (n == 3 && rng.next_u64() % 2 == 0) return kKnown[rng.next_u64() % 8];
    return letters(n);
  };
  switch (rng.next_u64() % 6) {
    case 0:  // he.net shape
      return "core" + digit() + "." + code(3) + digit() + ".he.net";
    case 1:  // windstream shape
      return "r" + digit() + "." + code(4) + digit() + "-ge." + letters(2) +
             ".windstream.net";
    case 2:  // zayo / cogent shapes
      return rng.next_u64() % 2 == 0
                 ? code(3) + digit() + ".zayo.com"
                 : "te0." + code(3) + digit() + "." + letters(2) + ".cogentco.com";
    case 3:  // near-miss: right suffix, wrong shape
      return letters(1 + rng.next_u64() % 8) + ".he.net";
    case 4: {  // unstructured garbage with hostname-ish charset
      std::string s;
      const std::size_t n = rng.next_u64() % 40;
      for (std::size_t i = 0; i < n; ++i) {
        const char* alphabet = "abcdefghijklmnopqrstuvwxyz0123456789.-_";
        s += alphabet[rng.next_u64() % 39];
      }
      return s;
    }
    default:  // unknown domain entirely
      return letters(3) + digit() + "." + letters(6) + ".example";
  }
}

// The byte-level answer the server would put on the wire.
std::string wire_answer(const Geolocator& g, std::string_view host) {
  const auto loc = g.locate(host);
  return loc ? serve::format_hit(*loc) : serve::format_miss();
}

void expect_same_detailed(const Geolocator& a, const Geolocator& b,
                          std::string_view host, std::string_view label) {
  const auto ra = a.locate_detailed(host);
  const auto rb = b.locate_detailed(host);
  ASSERT_EQ(ra.has_value(), rb.has_value()) << label << ": " << host;
  if (!ra) return;
  EXPECT_EQ(ra->best.location, rb->best.location) << label << ": " << host;
  EXPECT_EQ(ra->best.code, rb->best.code) << label << ": " << host;
  EXPECT_EQ(ra->best.role, rb->best.role) << label << ": " << host;
  EXPECT_EQ(ra->best.via_learned, rb->best.via_learned) << label << ": " << host;
  EXPECT_EQ(ra->best.suffix, rb->best.suffix) << label << ": " << host;
  EXPECT_EQ(ra->candidates, rb->candidates) << label << ": " << host;
  EXPECT_EQ(ra->hint, rb->hint) << label << ": " << host;
  EXPECT_EQ(ra->cls, rb->cls) << label << ": " << host;
}

class NcbEquivalence : public ::testing::Test {
 protected:
  std::string tmp(const std::string& name) {
    const std::string p = "test_ncb_eq_" + std::to_string(::getpid()) + "_" + name;
    cleanup_.push_back(p);
    return p;
  }
  void TearDown() override {
    for (const std::string& p : cleanup_) ::unlink(p.c_str());
  }
  std::vector<std::string> cleanup_;
};

TEST_F(NcbEquivalence, ThreePathsByteIdenticalOnCanaryAnd10kRandom) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  const auto conventions = corpus_model(dict);

  // Path 1: the canonical text cycle — save, re-load, Geolocator::add.
  const std::string text_path = tmp("model.nc");
  std::string error;
  ASSERT_TRUE(core::save_conventions_to_file(text_path, conventions, dict, &error)) << error;
  std::ifstream in(text_path);
  const auto loaded = core::load_conventions(in, dict, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  Geolocator text_geo(dict);
  for (const StoredConvention& sc : *loaded)
    if (sc.cls != NcClass::kPoor) text_geo.add(sc.nc, sc.cls);

  // Path 2: ncb heap (aligned owned buffer, payload-verified).
  const std::string img = core::serialize_conventions_ncb(conventions, dict);
  const auto heap_model = core::NcbModel::from_bytes(img, &error);
  ASSERT_NE(heap_model, nullptr) << error;
  Geolocator heap_geo(dict);
  heap_model->build_geolocator(heap_geo);

  // Path 3: ncb mmap (views over the read-only mapping).
  const std::string bin_path = tmp("model.ncb");
  ASSERT_TRUE(core::save_conventions_ncb_to_file(bin_path, conventions, dict, &error)) << error;
  const auto mapped_model = core::NcbModel::open(bin_path, &error);
  ASSERT_NE(mapped_model, nullptr) << error;
  ASSERT_TRUE(mapped_model->mapped());
  Geolocator mmap_geo(dict);
  mapped_model->build_geolocator(mmap_geo);

  EXPECT_EQ(heap_geo.convention_count(), text_geo.convention_count());
  EXPECT_EQ(mmap_geo.convention_count(), text_geo.convention_count());
  EXPECT_EQ(heap_geo.program_count(), text_geo.program_count());
  EXPECT_EQ(mmap_geo.program_count(), text_geo.program_count());

  for (const std::string& h : canary_corpus()) {
    expect_same_detailed(text_geo, heap_geo, h, "text-vs-heap");
    expect_same_detailed(text_geo, mmap_geo, h, "text-vs-mmap");
  }

  util::Rng rng(20260809);
  std::size_t hits = 0;
  for (int i = 0; i < 10000; ++i) {
    const std::string h = random_host(rng);
    const std::string want = wire_answer(text_geo, h);
    ASSERT_EQ(wire_answer(heap_geo, h), want) << "heap diverged on: " << h;
    ASSERT_EQ(wire_answer(mmap_geo, h), want) << "mmap diverged on: " << h;
    if (want != serve::format_miss()) ++hits;
  }
  // The corpus must actually exercise the hit path, or the test is vacuous.
  EXPECT_GT(hits, 100u);
}

TEST_F(NcbEquivalence, ModelStorePathsAnswerIdentically) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  const auto conventions = corpus_model(dict);
  std::string error;
  const std::string text_path = tmp("store.nc");
  const std::string bin_path = tmp("store.ncb");
  ASSERT_TRUE(core::save_conventions_to_file(text_path, conventions, dict, &error)) << error;
  ASSERT_TRUE(core::save_conventions_ncb_to_file(bin_path, conventions, dict, &error)) << error;

  serve::ModelStore text_store(dict, text_path);
  ASSERT_FALSE(text_store.reload().has_value());
  const auto text_snap = text_store.current();
  EXPECT_EQ(text_snap->format, "text");
  EXPECT_EQ(text_snap->ncb, nullptr);

  serve::ModelStore mmap_store(dict, bin_path);
  ASSERT_FALSE(mmap_store.reload().has_value());
  const auto mmap_snap = mmap_store.current();
  EXPECT_EQ(mmap_snap->format, "ncb_mmap");
  ASSERT_NE(mmap_snap->ncb, nullptr);
  EXPECT_TRUE(mmap_snap->ncb->mapped());
  EXPECT_GT(mmap_snap->ncb->bytes_mapped(), 0u);

  serve::ModelStore heap_store(dict, bin_path);
  heap_store.set_map_binary(false);
  ASSERT_FALSE(heap_store.reload().has_value());
  const auto heap_snap = heap_store.current();
  EXPECT_EQ(heap_snap->format, "ncb");
  ASSERT_NE(heap_snap->ncb, nullptr);
  EXPECT_FALSE(heap_snap->ncb->mapped());

  EXPECT_EQ(mmap_snap->convention_count, text_snap->convention_count);
  EXPECT_EQ(heap_snap->convention_count, text_snap->convention_count);
  for (const std::string& h : canary_corpus()) {
    expect_same_detailed(text_snap->geolocator, mmap_snap->geolocator, h, "store text-vs-mmap");
    expect_same_detailed(text_snap->geolocator, heap_snap->geolocator, h, "store text-vs-heap");
  }
}

// A one-suffix IATA model, suffix-parameterized so generations alternate.
std::vector<StoredConvention> iata_model(const std::string& suffix) {
  std::vector<StoredConvention> out(1);
  out[0].nc.suffix = suffix;
  out[0].cls = NcClass::kGood;
  GeoRegex gr;
  std::string pattern = "^([a-z]{3})\\d+\\.";
  for (const char c : suffix) {
    if (c == '.') pattern += "\\.";
    else pattern += c;
  }
  pattern += "$";
  gr.regex = *rx::parse(pattern);
  gr.plan.roles = {Role::kIata};
  out[0].nc.regexes.push_back(std::move(gr));
  return out;
}

// TSan target: 8 readers pin snapshots and run lookup bursts while the main
// thread rewrites the .ncb file and reloads — every reload maps a fresh
// file and drops the store's reference to the old mapping, so the readers'
// pinned snapshots are what keep old mappings alive. Invariants as in
// test_geolocate_concurrent: no race, no torn answers, pinned snapshots
// stay internally consistent.
TEST_F(NcbEquivalence, EightReadersThroughMmapHotSwaps) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  const std::string path = tmp("swap.ncb");
  const auto model_a = iata_model("he.net");
  const auto model_b = iata_model("zayo.com");
  std::string error;
  ASSERT_TRUE(core::save_conventions_ncb_to_file(path, model_a, dict, &error)) << error;

  serve::ModelStore store(dict, path);
  ASSERT_FALSE(store.reload().has_value());
  ASSERT_EQ(store.current()->format, "ncb_mmap");

  constexpr int kReaders = 8;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> lookups{0}, hits{0}, inconsistent{0};

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        const auto snap = store.current();
        const bool is_a = snap->geolocator.convention("he.net") != nullptr;
        const bool is_b = snap->geolocator.convention("zayo.com") != nullptr;
        if (is_a == is_b) {
          inconsistent.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        for (int i = 0; i < 64; ++i) {
          const auto a = snap->geolocator.locate("lhr1.he.net");
          const auto b = snap->geolocator.locate("lhr1.zayo.com");
          lookups.fetch_add(2, std::memory_order_relaxed);
          if (a) hits.fetch_add(1, std::memory_order_relaxed);
          if (b) hits.fetch_add(1, std::memory_order_relaxed);
          if (a.has_value() != is_a || b.has_value() != is_b)
            inconsistent.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  // 60 full rewrite+reload cycles, then keep serving until every reader got
  // at least one burst in.
  for (int g = 0; g < 60; ++g) {
    ASSERT_TRUE(core::save_conventions_ncb_to_file(path, g % 2 == 0 ? model_b : model_a,
                                                   dict, &error))
        << error;
    ASSERT_FALSE(store.reload().has_value());
  }
  while (lookups.load(std::memory_order_relaxed) < kReaders * 128u)
    std::this_thread::yield();
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(inconsistent.load(), 0u);
  EXPECT_GT(hits.load(), 0u);
  EXPECT_EQ(store.current()->format, "ncb_mmap");
  EXPECT_GE(store.generation(), 61u);
}

}  // namespace
}  // namespace hoiho
