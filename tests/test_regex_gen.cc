// Unit tests for stage 3 generation (core/regex_gen.h): base regexes,
// merging, and character-class embedding (paper appendix A).
#include "core/regex_gen.h"

#include <gtest/gtest.h>

#include <deque>
#include <set>

#include "core/apparent.h"
#include "geo/dictionary.h"
#include "regex/matcher.h"
#include "regex/parser.h"

namespace hoiho::core {
namespace {

class RegexGenTest : public ::testing::Test {
 protected:
  RegexGenTest() : dict_(geo::builtin_dictionary()), meas_({}, 64) {
    meas_.vps = {
        measure::VantagePoint{"was", "us", {38.91, -77.04}},
        measure::VantagePoint{"lon", "uk", {51.51, -0.13}},
        measure::VantagePoint{"tyo", "jp", {35.68, 139.69}},
        measure::VantagePoint{"sea", "us", {47.61, -122.33}},
    };
    meas_.pings = measure::RttMatrix(64, meas_.vps.size());
  }

  void place_near(topo::RouterId r, measure::VpId vp, double rtt_ms) {
    for (measure::VpId v = 0; v < meas_.vps.size(); ++v)
      meas_.pings.record(r, v, v == vp ? rtt_ms : 300.0);
  }

  const TaggedHostname& add(topo::RouterId r, std::string_view raw) {
    hostnames_.push_back(*dns::parse_hostname(raw, arena_));
    const ApparentTagger tagger(dict_, meas_, {});
    tagged_.push_back(tagger.tag(topo::HostnameRef{r, &hostnames_.back()}));
    return tagged_.back();
  }

  // All base regexes as strings, for containment checks.
  static std::set<std::string> patterns(const std::vector<GeoRegex>& v) {
    std::set<std::string> out;
    for (const GeoRegex& gr : v) out.insert(gr.regex.to_string());
    return out;
  }

  const geo::GeoDictionary& dict_;
  measure::Measurements meas_;
  util::Arena arena_;  // backs hostnames_ (dns::Hostname is a view)
  std::deque<dns::Hostname> hostnames_;
  std::vector<TaggedHostname> tagged_;
  RegexGenerator gen_;
};

TEST_F(RegexGenTest, BaseRegexForSimpleIataHostname) {
  place_near(0, 1, 2.0);
  add(0, "gw1.lhr16.alter.net");
  const auto regexes = gen_.generate_base(tagged_);
  ASSERT_FALSE(regexes.empty());
  const auto pats = patterns(regexes);
  // The paper's canonical shapes must both be generated.
  EXPECT_TRUE(pats.contains("^.+\\.([a-z]{3})\\d+\\.alter\\.net$") ||
              pats.contains("^[^\\.]+\\.([a-z]{3})\\d+\\.alter\\.net$"))
      << *pats.begin();
  for (const GeoRegex& gr : regexes) {
    if (gr.plan.primary() == Role::kIata) {
      const auto caps = rx::capture_strings(gr.regex, "gw1.lhr16.alter.net");
      ASSERT_FALSE(caps.empty());
      EXPECT_EQ(caps[0], "lhr");
    }
  }
}

TEST_F(RegexGenTest, AnnotationVariantCapturesCountry) {
  place_near(1, 1, 2.0);
  add(1, "xe-0.mpr1.lhr15.uk.zip.zayo.com");
  const auto regexes = gen_.generate_base(tagged_);
  bool with_cc = false;
  for (const GeoRegex& gr : regexes) {
    if (gr.plan.extracts(Role::kCountryCode)) {
      const auto caps = rx::capture_strings(gr.regex, "xe-0.mpr1.lhr15.uk.zip.zayo.com");
      if (caps.size() == 2 && caps[0] == "lhr" && caps[1] == "uk") with_cc = true;
    }
  }
  EXPECT_TRUE(with_cc);
}

TEST_F(RegexGenTest, CityNamePlanUsesAlphaPlus) {
  place_near(2, 1, 2.0);
  add(2, "ae1.london9.example.net");
  const auto regexes = gen_.generate_base(tagged_);
  bool found = false;
  for (const GeoRegex& gr : regexes) {
    if (gr.plan.primary() != Role::kCityName) continue;
    const auto caps = rx::capture_strings(gr.regex, "ae1.london9.example.net");
    if (!caps.empty() && caps[0] == "london") found = true;
    // City plans must also match other city names at the same position.
    if (!caps.empty()) {
      const auto caps2 = rx::capture_strings(gr.regex, "ae7.frankfurt12.example.net");
      if (!caps2.empty()) {
        EXPECT_EQ(caps2[0], "frankfurt");
      }
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(RegexGenTest, SplitClliTwoCaptures) {
  place_near(3, 0, 1.0);
  add(3, "ae1.asbn01-va.example.net");
  const auto regexes = gen_.generate_base(tagged_);
  bool found = false;
  for (const GeoRegex& gr : regexes) {
    if (gr.plan.primary() != Role::kClli) continue;
    if (gr.plan.roles.size() >= 2 && gr.plan.roles[0] == Role::kClli4) {
      const auto caps = rx::capture_strings(gr.regex, "ae1.asbn01-va.example.net");
      if (caps.size() >= 2 && caps[0] == "asbn" && caps[1] == "va") found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(RegexGenTest, ClliPrefixOfLongerTokenHasResidue) {
  place_near(4, 0, 1.0);
  add(4, "0.af0.asbnva83-mse01.example.net");
  const auto regexes = gen_.generate_base(tagged_);
  bool found = false;
  for (const GeoRegex& gr : regexes) {
    if (gr.plan.primary() != Role::kClli) continue;
    const auto caps = rx::capture_strings(gr.regex, "0.af0.asbnva83-mse01.example.net");
    if (caps.size() == 1 && caps[0] == "asbnva") found = true;
  }
  EXPECT_TRUE(found);
}

TEST_F(RegexGenTest, DedupRemovesDuplicates) {
  place_near(5, 1, 2.0);
  add(5, "gw1.lhr16.alter.net");
  add(5, "gw2.lhr17.alter.net");  // same structure -> same regexes
  const auto regexes = gen_.generate_base(tagged_);
  std::set<std::string> keys;
  for (const GeoRegex& gr : regexes) {
    const std::string key = gr.regex.to_string() + "|" + gr.plan.to_string();
    EXPECT_TRUE(keys.insert(key).second) << "duplicate: " << key;
  }
}

TEST_F(RegexGenTest, MergeDigitsToStar) {
  // Paper fig. 13 #5: ([a-z]+)\d+... and ([a-z]+)... merge into ([a-z]+)\d*.
  GeoRegex a, b;
  a.regex = *rx::parse("^([a-z]+)\\d+\\.([a-z]{2})\\.alter\\.net$");
  a.plan.roles = {Role::kCityName, Role::kCountryCode};
  b.regex = *rx::parse("^([a-z]+)\\.([a-z]{2})\\.alter\\.net$");
  b.plan.roles = {Role::kCityName, Role::kCountryCode};
  const std::vector<GeoRegex> in = {a, b};
  const auto merged = gen_.merge(in);
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].regex.to_string(), "^([a-z]+)\\d*\\.([a-z]{2})\\.alter\\.net$");
  // The merged regex matches both input shapes.
  EXPECT_FALSE(rx::capture_strings(merged[0].regex, "stuttgart9.de.alter.net").empty());
  EXPECT_FALSE(rx::capture_strings(merged[0].regex, "frankfurt.de.alter.net").empty());
}

TEST_F(RegexGenTest, MergeRequiresSamePlan) {
  GeoRegex a, b;
  a.regex = *rx::parse("^([a-z]+)\\d+\\.x\\.net$");
  a.plan.roles = {Role::kCityName};
  b.regex = *rx::parse("^([a-z]+)\\.x\\.net$");
  b.plan.roles = {Role::kIata};
  const std::vector<GeoRegex> in = {a, b};
  EXPECT_TRUE(gen_.merge(in).empty());
}

TEST_F(RegexGenTest, MergeIgnoresUnrelatedPairs) {
  GeoRegex a, b;
  a.regex = *rx::parse("^([a-z]{3})\\d+\\.x\\.net$");
  a.plan.roles = {Role::kIata};
  b.regex = *rx::parse("^cr\\.([a-z]{3})\\.y\\.net$");
  b.plan.roles = {Role::kIata};
  const std::vector<GeoRegex> in = {a, b};
  EXPECT_TRUE(gen_.merge(in).empty());
}

TEST_F(RegexGenTest, EmbedClassesRefinesCoarseNode) {
  // Paper fig. 13 #6 and fig. 7a ("zip" -> [a-z]{3}): a [^\.]+ component
  // whose matches are uniformly 3 letters becomes [a-z]{3}.
  place_near(6, 1, 2.0);
  add(6, "xe-0.mpr1.lhr15.uk.zip.zayo.com");
  add(6, "xe-1.mpr2.lhr16.uk.zip.zayo.com");
  GeoRegex coarse;
  coarse.regex = *rx::parse("^[^\\.]+\\.[^\\.]+\\.([a-z]{3})\\d+\\.([a-z]{2})\\.[^\\.]+\\.zayo\\.com$");
  coarse.plan.roles = {Role::kIata, Role::kCountryCode};
  const auto refined = gen_.embed_classes(coarse, tagged_);
  ASSERT_TRUE(refined.has_value());
  const std::string out = refined->regex.to_string();
  EXPECT_NE(out.find("[a-z]{3}\\.zayo"), std::string::npos) << out;
  // Captures still work.
  const auto caps = rx::capture_strings(refined->regex, "xe-0.mpr1.lhr15.uk.zip.zayo.com");
  ASSERT_EQ(caps.size(), 2u);
  EXPECT_EQ(caps[0], "lhr");
}

TEST_F(RegexGenTest, EmbedClassesNeedsTwoMatches) {
  place_near(7, 1, 2.0);
  add(7, "gw1.lhr16.alter.net");
  GeoRegex coarse;
  coarse.regex = *rx::parse("^[^\\.]+\\.([a-z]{3})\\d+\\.alter\\.net$");
  coarse.plan.roles = {Role::kIata};
  EXPECT_FALSE(gen_.embed_classes(coarse, tagged_).has_value());
}

TEST_F(RegexGenTest, EmbedClassesBailsOnNonUniform) {
  place_near(8, 1, 2.0);
  add(8, "gw1.lhr16.alter.net");    // "gw1" = alpha+digit
  add(8, "0.lhr17.alter.net");      // "0" = digit only
  GeoRegex coarse;
  coarse.regex = *rx::parse("^[^\\.]+\\.([a-z]{3})\\d+\\.alter\\.net$");
  coarse.plan.roles = {Role::kIata};
  // Either nullopt (nothing refined) or the coarse node kept as-is.
  const auto refined = gen_.embed_classes(coarse, tagged_);
  if (refined.has_value()) {
    EXPECT_NE(refined->regex.to_string().find("[^\\.]+"), std::string::npos);
  }
}

TEST_F(RegexGenTest, EmbedClassesGroupsSurviveShift) {
  place_near(9, 1, 2.0);
  add(9, "ae1.cr7.lhr16.alter.net");
  add(9, "ae2.cr9.lhr17.alter.net");
  GeoRegex coarse;
  coarse.regex = *rx::parse("^[^\\.]+\\.[^\\.]+\\.([a-z]{3})\\d+\\.alter\\.net$");
  coarse.plan.roles = {Role::kIata};
  const auto refined = gen_.embed_classes(coarse, tagged_);
  ASSERT_TRUE(refined.has_value());
  const auto caps = rx::capture_strings(refined->regex, "ae1.cr7.lhr16.alter.net");
  ASSERT_EQ(caps.size(), 1u);
  EXPECT_EQ(caps[0], "lhr");
}

TEST_F(RegexGenTest, FacilityCapture) {
  place_near(10, 0, 4.0);
  add(10, "ae-5.111-8th-ave.ny.example.net");
  const auto regexes = gen_.generate_base(tagged_);
  bool found = false;
  for (const GeoRegex& gr : regexes) {
    if (gr.plan.primary() != Role::kFacility) continue;
    const auto caps = rx::capture_strings(gr.regex, "ae-5.111-8th-ave.ny.example.net");
    if (!caps.empty() && caps[0] == "111-8th-ave") found = true;
  }
  EXPECT_TRUE(found);
}

TEST_F(RegexGenTest, SuffixAlwaysLiteral) {
  place_near(11, 1, 2.0);
  add(11, "gw1.lhr16.alter.net");
  for (const GeoRegex& gr : gen_.generate_base(tagged_)) {
    EXPECT_NE(gr.regex.to_string().find("\\.alter\\.net$"), std::string::npos);
  }
}

}  // namespace
}  // namespace hoiho::core
