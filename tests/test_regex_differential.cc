// Differential tests holding the compiled regex engine (rx::Program,
// rx::SetMatcher) byte-identical to the AST backtracker (rx::match) — the
// oracle the rest of the system was validated against. Random dialect
// patterns are run over random and mutated hostname-like subjects; match
// verdicts, capture spans, per-node spans, and budget-exhaustion behaviour
// must all agree, pair for pair.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/hoiho.h"
#include "core/nc_io.h"
#include "geo/dictionary.h"
#include "regex/matcher.h"
#include "regex/parser.h"
#include "regex/program.h"
#include "regex/set_matcher.h"
#include "sim/probing.h"
#include "util/rng.h"

namespace hoiho {
namespace {

// Random pattern within the full dialect — unlike the std::regex agreement
// test, possessive quantifiers are included (both engines implement them)
// and multiple capture groups are allowed.
std::string random_pattern(util::Rng& rng) {
  static const char* pieces[] = {
      "[a-z]{3}", "[a-z]{2}",  "[a-z]+",   "[a-z]++", "\\d+",  "\\d*",
      "\\d++",    "[a-z\\d]+", "[^\\.]+",  "[^-]+",   "xe",    "core",
      "-",        "\\.",       "net",      "gw",      "[a-z]*",
  };
  std::string out = "^";
  const std::size_t n = 2 + rng.next_below(5);
  for (std::size_t i = 0; i < n; ++i) {
    const char* piece = pieces[rng.next_below(std::size(pieces))];
    if (rng.next_bool(0.35)) {
      out += "(";
      out += piece;
      out += ")";
    } else {
      out += piece;
    }
  }
  out += "$";
  return out;
}

std::string random_subject(util::Rng& rng) {
  static const char* atoms[] = {"xe", "core", "lhr", "12", "3",  "-",
                                ".",  "net",  "a",   "gw", "ae0"};
  std::string out;
  const std::size_t n = 1 + rng.next_below(6);
  for (std::size_t i = 0; i < n; ++i) out += atoms[rng.next_below(std::size(atoms))];
  return out;
}

// Point mutation: insert, delete, or replace one character, so subjects
// hover around the match/non-match boundary instead of being wholly random.
std::string mutate(std::string s, util::Rng& rng) {
  if (s.empty()) return s;
  static const char alphabet[] = "abz019.-";
  const std::size_t at = rng.next_below(s.size());
  switch (rng.next_below(3)) {
    case 0: s.insert(at, 1, alphabet[rng.next_below(std::size(alphabet) - 1)]); break;
    case 1: s.erase(at, 1); break;
    default: s[at] = alphabet[rng.next_below(std::size(alphabet) - 1)];
  }
  return s;
}

// One (pattern, subject) comparison between the oracle and the compiled
// engine; returns false (with a test failure recorded) on any divergence.
void check_pair(const rx::Regex& regex, const rx::Program& program, const std::string& pattern,
                const std::string& subject, rx::MatchScratch& scratch) {
  std::vector<rx::Capture> oracle_spans;
  const rx::MatchResult oracle = rx::match_with_spans(regex, subject, oracle_spans);

  // Engine-level parity (no prefilters): verdict, budget accounting,
  // captures, and per-node spans must all be identical.
  const bool compiled = program.run(subject, scratch);
  ASSERT_EQ(compiled, oracle.matched) << pattern << " on \"" << subject << "\"";
  ASSERT_EQ(scratch.budget_exhausted, oracle.budget_exhausted)
      << pattern << " on \"" << subject << "\"";
  if (oracle.matched) {
    std::vector<rx::Capture> caps(program.capture_count());
    program.captures(scratch, caps.data());
    ASSERT_EQ(caps.size(), oracle.captures.size()) << pattern;
    for (std::size_t g = 0; g < caps.size(); ++g) {
      ASSERT_EQ(caps[g].begin, oracle.captures[g].begin)
          << pattern << " group " << g << " on \"" << subject << "\"";
      ASSERT_EQ(caps[g].end, oracle.captures[g].end)
          << pattern << " group " << g << " on \"" << subject << "\"";
    }
    ASSERT_EQ(oracle_spans.size(), program.node_count());
    for (std::size_t i = 0; i < oracle_spans.size(); ++i) {
      const rx::Capture span = program.node_span(scratch, i);
      ASSERT_EQ(span.begin, oracle_spans[i].begin)
          << pattern << " node " << i << " on \"" << subject << "\"";
      ASSERT_EQ(span.end, oracle_spans[i].end)
          << pattern << " node " << i << " on \"" << subject << "\"";
    }
  }

  // With prefilters the verdict must not change (prefilters are sound:
  // they only reject subjects the engine would reject too).
  ASSERT_EQ(program.match(subject, scratch), oracle.matched)
      << pattern << " on \"" << subject << "\" (prefilter path)";
}

TEST(RegexDifferential, ProgramAgreesWithBacktrackerOn10kPairs) {
  std::size_t pairs = 0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    util::Rng rng(seed * 7919);
    rx::MatchScratch scratch;
    for (int round = 0; round < 80; ++round) {
      const std::string pattern = random_pattern(rng);
      const auto regex = rx::parse(pattern);
      ASSERT_TRUE(regex.has_value()) << pattern;
      const rx::Program program = rx::Program::compile(*regex);
      std::string subject = random_subject(rng);
      for (int s = 0; s < 30; ++s) {
        check_pair(*regex, program, pattern, subject, scratch);
        ++pairs;
        // Alternate fresh subjects with mutation chains around the boundary.
        subject = rng.next_bool(0.5) ? random_subject(rng) : mutate(subject, rng);
      }
    }
  }
  EXPECT_GE(pairs, 10000u);
}

TEST(RegexDifferential, SetMatcherAgreesWithPerRegexOracle) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    util::Rng rng(seed * 104729);
    rx::MatchScratch scratch;
    rx::SetMatches matches;
    for (int round = 0; round < 20; ++round) {
      std::vector<rx::Regex> regexes;
      std::vector<std::string> patterns;
      rx::SetMatcher set;
      const std::size_t k = 2 + rng.next_below(30);
      for (std::size_t i = 0; i < k; ++i) {
        patterns.push_back(random_pattern(rng));
        regexes.push_back(*rx::parse(patterns.back()));
        set.add(regexes.back());
      }
      set.finalize();
      std::string subject = random_subject(rng);
      for (int s = 0; s < 25; ++s) {
        set.match_all(subject, scratch, matches);
        std::size_t hit = 0;
        for (std::size_t i = 0; i < regexes.size(); ++i) {
          const rx::MatchResult oracle = rx::match(regexes[i], subject);
          const bool in_set =
              hit < matches.indices.size() && matches.indices[hit] == i;
          ASSERT_EQ(in_set, oracle.matched)
              << patterns[i] << " on \"" << subject << "\"";
          if (!in_set) continue;
          const auto caps = matches.captures(hit);
          ASSERT_EQ(caps.size(), oracle.captures.size()) << patterns[i];
          for (std::size_t g = 0; g < caps.size(); ++g) {
            ASSERT_EQ(caps[g].begin, oracle.captures[g].begin)
                << patterns[i] << " group " << g << " on \"" << subject << "\"";
            ASSERT_EQ(caps[g].end, oracle.captures[g].end)
                << patterns[i] << " group " << g << " on \"" << subject << "\"";
          }
          ++hit;
        }
        ASSERT_EQ(hit, matches.indices.size()) << "spurious hit on \"" << subject << "\"";
        subject = rng.next_bool(0.5) ? random_subject(rng) : mutate(subject, rng);
      }
    }
  }
}

// --- budget exhaustion -------------------------------------------------------

// Four unbounded greedy classes force the backtracker through ~n^3/6 split
// points before it can conclude the trailing literal never matches; at
// n = 250 that exceeds the work bound. Both engines must report the abandoned
// search via budget_exhausted instead of a silent (inconclusive) non-match.
TEST(RegexBudget, PathologicalPatternSetsExhaustedOnBothEngines) {
  const auto regex = rx::parse("^[a-z\\d]+[a-z\\d]+[a-z\\d]+[a-z\\d]+\\.x$");
  ASSERT_TRUE(regex.has_value());
  const std::string subject(250, 'a');

  const rx::MatchResult oracle = rx::match(*regex, subject);
  EXPECT_FALSE(oracle.matched);
  EXPECT_TRUE(oracle.budget_exhausted);

  const rx::Program program = rx::Program::compile(*regex);
  rx::MatchScratch scratch;
  EXPECT_FALSE(program.run(subject, scratch));
  EXPECT_TRUE(scratch.budget_exhausted);

  // The prefilter path rejects this subject outright (it cannot end in
  // ".x"), so the compiled full-match path never starts the doomed search —
  // and must not report a stale exhaustion flag from the run above.
  EXPECT_FALSE(program.match(subject, scratch));
  EXPECT_FALSE(scratch.budget_exhausted);
}

TEST(RegexBudget, EvaluatorCountsExhaustedHostnames) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  measure::Measurements meas({}, 1);
  core::Evaluator evaluator(dict, meas);

  core::NamingConvention nc;
  nc.suffix = "qq.net";
  core::GeoRegex gr;
  // Five unbounded classes (dots allowed, so they roam across labels) that
  // must leave exactly one digit before the literal tail.
  gr.regex = *rx::parse("^[^-]*[^-]*[^-]*[^-]*[^-]*\\d\\.qq\\.net$");
  gr.plan.roles = {core::Role::kIata};
  nc.regexes.push_back(std::move(gr));

  // A subject that survives every prefilter (right tail, all required bytes,
  // DNS-valid 60-char labels) but has no digit anywhere, so both engines
  // grind through all class splits until the work bound trips.
  const std::string label(60, 'a');
  const std::string pathological = label + "." + label + "." + label + ".qq.net";
  std::string canonical;
  const auto host = dns::parse_hostname(pathological, canonical);
  ASSERT_TRUE(host.has_value());
  core::TaggedHostname th;
  th.ref.hostname = &*host;

  for (const bool compiled : {false, true}) {
    evaluator.set_use_compiled(compiled);
    const core::NcEvaluation eval = evaluator.evaluate(nc, {&th, 1});
    EXPECT_EQ(eval.counts.budget_exhausted, 1u) << "compiled=" << compiled;
    ASSERT_EQ(eval.per_hostname.size(), 1u);
    EXPECT_TRUE(eval.per_hostname[0].budget_exhausted) << "compiled=" << compiled;
  }
}

// --- engine determinism ------------------------------------------------------

// The compiled engine must not change what the pipeline learns: the saved
// model (regexes, classes, learned geohints) has to be byte-identical with
// the engine on and off.
TEST(RegexDifferential, PipelineOutputIdenticalAcrossEngines) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  sim::WorldConfig wc;
  wc.seed = 20260805;
  wc.operators = 10;
  wc.geohint_scheme_rate = 0.9;
  const sim::World world = sim::generate_world(dict, wc);
  const measure::Measurements pings = sim::probe_pings(world, {});

  const auto saved_model = [&](bool compiled) {
    core::HoihoConfig config;
    config.threads = 1;
    config.compiled_regex = compiled;
    const core::Hoiho hoiho(dict, config);
    const core::HoihoResult result = hoiho.run(world.topology, pings);
    std::vector<core::StoredConvention> stored;
    for (const core::SuffixResult& sr : result.suffixes) {
      if (!sr.has_nc()) continue;
      stored.push_back(core::StoredConvention{sr.nc, sr.cls});
    }
    std::ostringstream out;
    core::save_conventions(out, stored, dict);
    return out.str();
  };

  const std::string legacy = saved_model(false);
  const std::string compiled = saved_model(true);
  EXPECT_FALSE(compiled.empty());
  EXPECT_EQ(compiled, legacy);
}

}  // namespace
}  // namespace hoiho
