// The observability layer (DESIGN.md §11): registry counter/histogram
// correctness under concurrent writers (this file is in the TSan job's
// target list), snapshot consistency and monotonicity, STATS v1 wire
// compatibility across the Metrics redesign, stage-span capture for a full
// Hoiho::run, and the one-registry-many-subsystems contract.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <thread>
#include <vector>

#include "core/hoiho.h"
#include "io/load_report.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/metrics.h"
#include "util/thread_pool.h"
#include "serve/protocol.h"
#include "sim/probing.h"
#include "sim/scenario.h"

namespace hoiho {
namespace {

// --- registry primitives ---------------------------------------------------

TEST(ObsRegistry, CounterConcurrentTotals) {
  obs::Registry reg;
  obs::Counter c = reg.counter("c");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.inc();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.load(), kThreads * kPerThread);
  EXPECT_EQ(reg.snapshot().value("c"), kThreads * kPerThread);
}

TEST(ObsRegistry, HistogramConcurrentTotals) {
  obs::Registry reg;
  const double bounds[] = {10, 100, 1000};
  obs::Histogram h = reg.histogram("h", bounds);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) h.observe(static_cast<double>((t + i) % 2000));
    });
  }
  for (std::thread& t : threads) t.join();
  const obs::Snapshot snap = reg.snapshot();
  const obs::Snapshot::Entry* e = snap.find("h");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->hist.count, static_cast<std::uint64_t>(kThreads * kPerThread));
  std::uint64_t bucket_sum = 0;
  for (const std::uint64_t b : e->hist.buckets) bucket_sum += b;
  EXPECT_EQ(bucket_sum, e->hist.count);
  EXPECT_GT(e->hist.sum, 0.0);
  // Percentiles are ordered and within the observed range.
  const double p50 = e->hist.percentile(0.50), p99 = e->hist.percentile(0.99);
  EXPECT_LE(p50, p99);
  EXPECT_GE(p50, 0.0);
}

TEST(ObsRegistry, RegistrationIsIdempotentAndKindChecked) {
  obs::Registry reg;
  obs::Counter a = reg.counter("x");
  obs::Counter b = reg.counter("x");
  a.inc();
  b.inc();
  EXPECT_EQ(a.load(), 2u);  // same underlying cells
  EXPECT_EQ(reg.size(), 1u);
  // Same name, different kind: null handle, no crash, storage intact.
  obs::Gauge g = reg.gauge("x");
  EXPECT_FALSE(static_cast<bool>(g));
  g.set(5);  // no-op on a null handle
  EXPECT_EQ(reg.snapshot().value("x"), 2u);
}

TEST(ObsRegistry, NullHandlesAreNoOps) {
  obs::Counter c;
  obs::Gauge g;
  obs::Histogram h;
  c.inc();
  g.set(7);
  h.observe(1.0);
  EXPECT_EQ(c.load(), 0u);
  EXPECT_EQ(g.load(), 0);
}

TEST(ObsRegistry, SnapshotMonotonicityUnderLoad) {
  // Counters only go up: a snapshot taken while 8 writers hammer the
  // registry must never show a counter below a previously-seen value.
  obs::Registry reg;
  obs::Counter c = reg.counter("m");
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 8; ++t) {
    writers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) c.inc();
    });
  }
  std::uint64_t last = 0;
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t now = reg.snapshot().value("m");
    EXPECT_GE(now, last);
    last = now;
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : writers) t.join();
  EXPECT_EQ(reg.snapshot().value("m"), c.load());
}

TEST(ObsRegistry, SnapshotRespectsRegistrationOrderInvariant) {
  // serve::Metrics registers hits/misses before requests so snapshots keep
  // requests >= hits + misses even mid-flight. Exercise the same pattern.
  obs::Registry reg;
  obs::Counter effect = reg.counter("effect");
  obs::Counter cause = reg.counter("cause");
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        cause.inc();  // cause first in program order...
        effect.inc();
      }
    });
  }
  for (int i = 0; i < 200; ++i) {
    const obs::Snapshot snap = reg.snapshot();
    // ...effect read first in snapshot order, so cause can never lag it.
    EXPECT_GE(snap.value("cause"), snap.value("effect"));
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : writers) t.join();
}

TEST(ObsRegistry, JsonAndPrometheusExports) {
  obs::Registry reg;
  reg.counter("plain").inc(3);
  reg.counter("labeled{stage=\"tag\"}").inc(4);
  reg.gauge("depth").set(-2);
  const double bounds[] = {1, 10};
  reg.histogram("lat", bounds).observe(5);
  const obs::Snapshot snap = reg.snapshot();

  const std::string json = snap.to_json();
  EXPECT_NE(json.find("\"plain\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"labeled{stage=\\\"tag\\\"}\": 4"), std::string::npos);
  EXPECT_NE(json.find("\"depth\": -2"), std::string::npos);
  EXPECT_NE(json.find("\"count\": 1"), std::string::npos);

  const std::string prom = snap.to_prometheus();
  EXPECT_NE(prom.find("# TYPE plain counter"), std::string::npos);
  EXPECT_NE(prom.find("plain 3"), std::string::npos);
  EXPECT_NE(prom.find("labeled{stage=\"tag\"} 4"), std::string::npos);
  EXPECT_NE(prom.find("lat_bucket{le=\"10\"} 1"), std::string::npos);
  EXPECT_NE(prom.find("lat_count 1"), std::string::npos);
}

// --- tracer ----------------------------------------------------------------

TEST(ObsTracer, SpansNestAndOrder) {
  obs::Tracer tracer(16);
  {
    obs::Span outer(&tracer, "outer");
    obs::Span inner(&tracer, "inner", "detail");
    inner.set_work(3);
  }
  const std::vector<obs::SpanRecord> spans = tracer.spans();
  ASSERT_EQ(spans.size(), 2u);
  // Children finish (and record) before parents.
  EXPECT_EQ(spans[0].name, "inner");
  EXPECT_EQ(spans[1].name, "outer");
  EXPECT_EQ(spans[0].depth, 1u);
  EXPECT_EQ(spans[1].depth, 0u);
  EXPECT_EQ(spans[0].work, 3u);
  EXPECT_GE(spans[0].start_ns, spans[1].start_ns);
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(ObsTracer, RingOverflowCountsDrops) {
  obs::Tracer tracer(4);
  for (int i = 0; i < 10; ++i) obs::Span span(&tracer, "s");
  EXPECT_EQ(tracer.spans().size(), 4u);
  EXPECT_EQ(tracer.dropped(), 6u);
}

// --- serve metrics compat --------------------------------------------------

TEST(ServeMetrics, StatsV1ByteCompat) {
  // The v1 STATS line from a fresh Metrics must be byte-identical to the
  // pre-registry golden output: same keys, same order, same formatting.
  serve::Metrics m;
  const std::string golden =
      "STATS,requests=0,hits=0,misses=0,errors=0,admin=0,reloads=0,reload_failures=0,"
      "reload_debounced=0,deadline_expired=0,shed_busy=0,idle_closed=0,injected_faults=0,"
      "batches=0,batched_lines=0,avg_batch=0.00,connections_opened=0,connections_closed=0,"
      "parse_ns=0,lookup_ns=0,write_ns=0,generation=1,conventions=3,programs=0";
  EXPECT_EQ(serve::format_stats(m.snapshot(), 1, 3), golden);

  m.requests.inc(5);
  m.hits.inc(3);
  m.misses.inc(2);
  m.batches.inc();
  m.batched_lines.add(4);
  const serve::Metrics::Snapshot snap = m.snapshot();
  EXPECT_EQ(snap.requests, 5u);
  EXPECT_DOUBLE_EQ(snap.avg_batch(), 4.0);
  const std::string line = serve::format_stats(snap, 2, 7, 9);
  EXPECT_NE(line.find("requests=5,hits=3,misses=2"), std::string::npos);
  EXPECT_NE(line.find("avg_batch=4.00"), std::string::npos);
  EXPECT_NE(line.find("generation=2,conventions=7,programs=9"), std::string::npos);
  EXPECT_EQ(serve::classify_response(line), serve::ResponseKind::kStats);
}

TEST(ServeMetrics, StatsV2AndMetricsExposition) {
  serve::Metrics m;
  m.requests.inc(2);
  m.hits.inc();
  m.batch_ns.observe(5e5);
  const std::string v2 =
      serve::format_stats_v2(m.registry().snapshot(), /*generation=*/3, /*conventions=*/4,
                             /*programs=*/5);
  EXPECT_EQ(serve::classify_response(v2), serve::ResponseKind::kStats2);
  EXPECT_NE(v2.find("serve_requests:c=2"), std::string::npos);
  EXPECT_NE(v2.find("serve_hits:c=1"), std::string::npos);
  EXPECT_NE(v2.find("serve_batch_ns:h=count:1;"), std::string::npos);
  EXPECT_NE(v2.find(";p50:"), std::string::npos);
  EXPECT_NE(v2.find("generation:g=3,conventions:g=4,programs:g=5"), std::string::npos);

  const std::string text =
      serve::format_metrics_text(m.registry().snapshot(), 3, 4, 5);
  EXPECT_EQ(serve::classify_response(text.substr(0, text.find('\n'))),
            serve::ResponseKind::kMetrics);
  EXPECT_NE(text.find("serve_requests 2"), std::string::npos);
  EXPECT_NE(text.find("hoihod_generation 3"), std::string::npos);
  const std::string tail = "# EOF";
  ASSERT_GE(text.size(), tail.size());
  EXPECT_EQ(text.substr(text.size() - tail.size()), tail);
}

TEST(ServeMetrics, SnapshotInvariantUnderConcurrentTraffic) {
  // The satellite fix: requests >= hits + misses in every snapshot, even
  // with writers mid-increment (effects registered before the cause).
  serve::Metrics m;
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&m, &stop] {
      while (!stop.load(std::memory_order_relaxed)) {
        m.requests.inc();
        m.hits.inc();
      }
    });
  }
  for (int i = 0; i < 200; ++i) {
    const serve::Metrics::Snapshot s = m.snapshot();
    EXPECT_GE(s.requests, s.hits + s.misses);
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : writers) t.join();
}

// --- pipeline instrumentation ---------------------------------------------

sim::World small_world() {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  sim::WorldConfig config;
  config.seed = 7;
  config.operators = 3;
  config.geohint_scheme_rate = 1.0;
  return sim::generate_world(dict, config);
}

TEST(PipelineObs, RunReportCapturesSpansAndCounters) {
  const sim::World world = small_world();
  const measure::Measurements meas = sim::probe_pings(world, {});
  core::HoihoConfig config;
  config.threads = 1;
  const core::Hoiho hoiho(*world.dict, config);
  const core::RunReport report = hoiho.run_report(world.topology, meas);

  ASSERT_FALSE(report.result.suffixes.empty());
  const std::uint64_t suffixes = report.metrics.value("pipeline_suffixes");
  EXPECT_EQ(suffixes, report.result.suffixes.size());
  EXPECT_GT(report.metrics.value("pipeline_hostnames"), 0u);
  EXPECT_GT(report.metrics.value("consistency_cache_hits"), 0u);
  EXPECT_GT(report.metrics.value("rx_set_subjects"), 0u);
  ASSERT_NE(report.metrics.find("pipeline_suffix_ns"), nullptr);
  EXPECT_EQ(report.metrics.find("pipeline_suffix_ns")->hist.count, suffixes);
  EXPECT_EQ(report.dropped_spans, 0u);

  // Spans: one "run" root, one "suffix" per group, stage spans nested under
  // suffixes (sorted by start, a suffix's stages start after it).
  std::map<std::string, std::size_t> by_name;
  for (const obs::SpanRecord& s : report.spans) ++by_name[s.name];
  EXPECT_EQ(by_name["run"], 1u);
  EXPECT_EQ(by_name["suffix"], suffixes);
  EXPECT_GE(by_name["tag"], suffixes);  // every suffix is tagged
  EXPECT_GE(by_name["eval"], 1u);
  EXPECT_GE(by_name["learn"], 1u);
  for (const obs::SpanRecord& s : report.spans) {
    if (s.name == "suffix") {
      EXPECT_EQ(s.depth, 1u);  // nested under "run"
    } else if (s.name == "tag") {
      EXPECT_EQ(s.depth, 2u);  // nested under "suffix"
    }
  }
  // Sequential run: stage spans are recorded (finished) before their suffix.
  std::vector<std::string> order;
  for (const obs::SpanRecord& s : report.spans)
    if (s.name == "suffix" || s.name == "tag") order.push_back(s.name);
  ASSERT_GE(order.size(), 2u);
  EXPECT_EQ(order[0], "tag");

  // The report serializes: both halves present.
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"metrics\""), std::string::npos);
  EXPECT_NE(json.find("\"spans\""), std::string::npos);
  EXPECT_NE(json.find("pipeline_suffixes"), std::string::npos);
}

TEST(PipelineObs, ParallelRunMatchesSequentialCounters) {
  const sim::World world = small_world();
  const measure::Measurements meas = sim::probe_pings(world, {});
  core::HoihoConfig config;
  config.threads = 1;
  const core::Hoiho seq(*world.dict, config);
  config.threads = 4;
  const core::Hoiho par(*world.dict, config);
  const core::RunReport a = seq.run_report(world.topology, meas);
  const core::RunReport b = par.run_report(world.topology, meas);
  // Deterministic work counters agree regardless of threading.
  for (const char* key : {"pipeline_suffixes", "pipeline_hostnames",
                          "pipeline_tagged_hostnames", "pipeline_candidates_generated",
                          "pipeline_ncs_built", "consistency_cache_hits",
                          "consistency_cache_misses", "rx_set_subjects", "rx_set_hits"}) {
    EXPECT_EQ(a.metrics.value(key), b.metrics.value(key)) << key;
  }
  // The pool only spins up when the host has >1 core (the pipeline clamps
  // workers to hardware concurrency); single-core hosts run sequentially
  // and record no pool activity.
  if (util::ThreadPool::resolve(0) > 1)
    EXPECT_GT(b.metrics.value("pipeline_pool_tasks_executed"), 0u);
  else
    EXPECT_EQ(b.metrics.value("pipeline_pool_tasks_executed"), 0u);
}

TEST(PipelineObs, RegistryIsTheOnlyCacheTelemetryPath) {
  // SuffixResult::cache_stats / stage_ms are gone; the registry is now the
  // sole carrier of cache telemetry, so a run that exercises the
  // consistency cache must surface activity there.
  const sim::World world = small_world();
  const measure::Measurements meas = sim::probe_pings(world, {});
  const core::Hoiho hoiho(*world.dict, core::HoihoConfig{});
  const core::RunReport report = hoiho.run_report(world.topology, meas);
  EXPECT_GT(report.metrics.value("consistency_cache_hits") +
                report.metrics.value("consistency_cache_misses"),
            0u);
  EXPECT_GT(report.metrics.value("pipeline_suffixes"), 0u);
}

// --- the one-registry contract --------------------------------------------

TEST(ObsIntegration, OneRegistryHoldsAllSubsystems) {
  // The acceptance scenario: learner, ingest, and serving metrics land in
  // one registry, and a single snapshot (one JSON document) contains stage
  // counters, cache hit rates, ingest skip counts, and serve counters.
  obs::Registry registry;

  const sim::World world = small_world();
  const measure::Measurements meas = sim::probe_pings(world, {});
  core::HoihoConfig config;
  config.registry = &registry;
  const core::Hoiho hoiho(*world.dict, config);
  hoiho.run(world.topology, meas);

  io::LoadOptions opt;
  opt.lenient = true;
  io::LoadReport load;
  load.lines = 10;
  load.records = 8;
  load.skip(opt, "bad_fields", 3, "truncated row");
  load.skip(opt, "bad_number", 5, "not a float");
  load.publish(registry, "itdk");

  serve::Metrics serve_metrics(&registry);
  serve_metrics.requests.inc(4);
  serve_metrics.hits.inc(3);

  const obs::Snapshot snap = registry.snapshot();
  EXPECT_GT(snap.value("pipeline_suffixes"), 0u);
  EXPECT_GT(snap.value("consistency_cache_hits"), 0u);
  EXPECT_EQ(snap.value("ingest_lines{source=\"itdk\"}"), 10u);
  EXPECT_EQ(snap.value("ingest_skipped{category=\"bad_fields\",source=\"itdk\"}"), 1u);
  EXPECT_EQ(snap.value("serve_requests"), 4u);

  const std::string json = snap.to_json();
  for (const char* needle : {"pipeline_stage_us", "consistency_cache_hits", "ingest_skipped",
                             "serve_requests"}) {
    EXPECT_NE(json.find(needle), std::string::npos) << needle;
  }
}

TEST(ObsIntegration, LoadReportPublishWithoutSource) {
  obs::Registry registry;
  io::LoadOptions opt;
  opt.lenient = true;
  io::LoadReport load;
  load.lines = 5;
  load.records = 4;
  load.skip(opt, "bad_fields", 2, "short row");
  load.publish(registry);
  const obs::Snapshot snap = registry.snapshot();
  EXPECT_EQ(snap.value("ingest_lines"), 5u);
  EXPECT_EQ(snap.value("ingest_records"), 4u);
  EXPECT_EQ(snap.value("ingest_skipped{category=\"bad_fields\"}"), 1u);
  EXPECT_FALSE(snap.has("ingest_failures"));
}

}  // namespace
}  // namespace hoiho
