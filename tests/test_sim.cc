// Unit and invariant tests for the synthetic Internet generator and the
// probing simulator.
#include <gtest/gtest.h>

#include "geo/coord.h"
#include "measure/consistency.h"
#include <set>

#include "dns/hostname.h"
#include "sim/scenario.h"

namespace hoiho::sim {
namespace {

TEST(Naming, RenderBasicTemplate) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  NamingScheme scheme;
  scheme.hint_role = core::Role::kIata;
  scheme.labels = {{Part::role(), Part::num()}, {Part::geo(), Part::num()}};
  geo::LocationId london = dict.lookup(geo::HintType::kCityName, "london")[0];
  for (geo::LocationId id : dict.lookup(geo::HintType::kCityName, "london"))
    if (geo::same_country(dict.location(id).country, "uk")) london = id;
  util::Rng rng(1);
  const auto rendered = render_hostname(scheme, dict, london, "x.net", rng);
  ASSERT_TRUE(rendered.has_value());
  EXPECT_TRUE(rendered->has_geohint);
  EXPECT_NE(rendered->hostname.find("lhr"), std::string::npos);
  EXPECT_NE(rendered->hostname.find(".x.net"), std::string::npos);
}

TEST(Naming, CustomCodeOverridesDictionary) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  NamingScheme scheme;
  scheme.hint_role = core::Role::kIata;
  scheme.labels = {{Part::geo()}};
  geo::LocationId tokyo = geo::kInvalidLocation;
  for (geo::LocationId id : dict.lookup(geo::HintType::kCityName, "tokyo")) tokyo = id;
  scheme.custom_codes[tokyo] = "tok";
  util::Rng rng(1);
  const auto rendered = render_hostname(scheme, dict, tokyo, "x.net", rng);
  ASSERT_TRUE(rendered.has_value());
  EXPECT_EQ(rendered->hostname, "tok.x.net");
}

TEST(Naming, LocationWithoutCodeYieldsNothing) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  NamingScheme scheme;
  scheme.hint_role = core::Role::kIata;
  scheme.labels = {{Part::geo()}};
  geo::LocationId ashburn = geo::kInvalidLocation;  // no IATA code
  for (geo::LocationId id : dict.lookup(geo::HintType::kCityName, "ashburn"))
    if (dict.location(id).state == "va") ashburn = id;
  util::Rng rng(1);
  EXPECT_FALSE(render_hostname(scheme, dict, ashburn, "x.net", rng).has_value());
}

TEST(Naming, SplitClliRendering) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  NamingScheme scheme;
  scheme.hint_role = core::Role::kClli;
  scheme.split_clli = true;
  scheme.labels = {{Part::geo()}};
  geo::LocationId ashburn = geo::kInvalidLocation;
  for (geo::LocationId id : dict.lookup(geo::HintType::kCityName, "ashburn"))
    if (dict.location(id).state == "va") ashburn = id;
  util::Rng rng(1);
  const auto rendered = render_hostname(scheme, dict, ashburn, "x.net", rng);
  ASSERT_TRUE(rendered.has_value());
  // "asbn<digit>-va.x.net"
  EXPECT_EQ(rendered->hostname.substr(0, 4), "asbn");
  EXPECT_NE(rendered->hostname.find("-va."), std::string::npos);
}

TEST(Naming, ExtraLabelRateVariesShape) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  NamingScheme scheme;
  scheme.hint_role = core::Role::kIata;
  scheme.extra_label_rate = 0.5;
  scheme.labels = {{Part::role(), Part::num()}, {Part::geo(), Part::num()}};
  geo::LocationId london = geo::kInvalidLocation;
  for (geo::LocationId id : dict.lookup(geo::HintType::kCityName, "london"))
    if (geo::same_country(dict.location(id).country, "uk")) london = id;
  util::Rng rng(9);
  std::set<std::size_t> label_counts;
  for (int i = 0; i < 40; ++i) {
    const auto rendered = render_hostname(scheme, dict, london, "x.net", rng);
    ASSERT_TRUE(rendered.has_value());
    std::string canonical;
    const auto h = dns::parse_hostname(rendered->hostname, canonical);
    ASSERT_TRUE(h.has_value()) << rendered->hostname;
    label_counts.insert(h->labels().size());
  }
  // Both the 2-label and the 3-label (extra leading "0"/"1") shapes occur.
  EXPECT_EQ(label_counts, (std::set<std::size_t>{2, 3}));
}

TEST(Naming, GbRenderedAsUk) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  NamingScheme scheme;
  scheme.hint_role = core::Role::kIata;
  scheme.labels = {{Part::geo()}, {Part::country()}};
  geo::LocationId london = geo::kInvalidLocation;
  for (geo::LocationId id : dict.lookup(geo::HintType::kCityName, "london"))
    if (geo::same_country(dict.location(id).country, "uk")) london = id;
  util::Rng rng(1);
  const auto rendered = render_hostname(scheme, dict, london, "x.net", rng);
  ASSERT_TRUE(rendered.has_value());
  EXPECT_NE(rendered->hostname.find(".uk."), std::string::npos);
}

TEST(Naming, CustomCodesAreLearnable) {
  // Every code make_custom_code() builds must satisfy the §5.4 abbreviation
  // heuristics the learner uses — otherwise the simulator would generate
  // unlearnable worlds.
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  util::Rng rng(3);
  std::size_t made = 0;
  for (geo::LocationId id = 0; id < dict.size(); ++id) {
    const auto code = make_custom_code(core::Role::kIata, dict, id, rng);
    if (!code) continue;
    ++made;
    EXPECT_EQ(code->size(), 3u);
    EXPECT_TRUE(geo::is_location_abbrev(*code, dict.location(id)))
        << *code << " vs " << dict.location(id).city;
  }
  EXPECT_GT(made, dict.size() / 2);
}

TEST(Naming, CustomClliCodesCarryStateOrCountry) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  util::Rng rng(5);
  for (geo::LocationId id = 0; id < dict.size(); id += 7) {
    const auto code = make_custom_code(core::Role::kClli, dict, id, rng);
    if (!code) continue;
    ASSERT_EQ(code->size(), 6u);
    const geo::Location& loc = dict.location(id);
    const std::string tail = code->substr(4, 2);
    const std::string state2 = loc.state.substr(0, 2);
    EXPECT_TRUE(tail == state2 || geo::same_country(tail, loc.country))
        << *code << " for " << loc.city;
  }
}

TEST(Naming, WellKnownCommunityCodes) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  util::Rng rng(5);
  geo::LocationId toronto = geo::kInvalidLocation;
  for (geo::LocationId id : dict.lookup(geo::HintType::kCityName, "toronto")) toronto = id;
  const auto code = make_custom_code(core::Role::kIata, dict, toronto, rng);
  ASSERT_TRUE(code.has_value());
  EXPECT_EQ(*code, "tor");  // paper table 5
}

TEST(World, GenerateBasicInvariants) {
  WorldConfig config;
  config.seed = 99;
  config.operators = 30;
  const World world = generate_world(geo::builtin_dictionary(), config);
  EXPECT_EQ(world.operators.size(), 30u);
  EXPECT_GT(world.topology.size(), 60u);  // >= 2 routers per operator
  EXPECT_EQ(world.vps.size(), config.vp_count);
  // Every router has a valid true location.
  for (const topo::Router& r : world.topology.routers()) {
    EXPECT_LT(r.true_location, geo::builtin_dictionary().size());
    EXPECT_FALSE(r.interfaces.empty());
  }
  // Truth records index correctly.
  for (const HostnameTruth& t : world.truths) {
    const HostnameTruth* via_index = world.truth_for(t.hostname);
    ASSERT_NE(via_index, nullptr);
    EXPECT_EQ(via_index->hostname, t.hostname);
  }
}

TEST(World, HostnameRateRoughlyHolds) {
  WorldConfig config;
  config.seed = 7;
  config.operators = 60;
  config.hostname_rate = 0.55;
  const World world = generate_world(geo::builtin_dictionary(), config);
  const double rate = static_cast<double>(world.topology.count_with_hostname()) /
                      static_cast<double>(world.topology.size());
  // Hostname rates differ per operator class (backbones name more of
  // their routers), so the aggregate varies with the operator mix.
  EXPECT_NEAR(rate, 0.55, 0.13);
}

TEST(Probing, MeasuredNeverBeatsSpeedOfLight) {
  // The physical invariant the whole method rests on.
  WorldConfig config;
  config.seed = 13;
  config.operators = 15;
  const World world = generate_world(geo::builtin_dictionary(), config);
  const measure::Measurements meas = probe_pings(world, PingConfig{});
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  for (const topo::Router& r : world.topology.routers()) {
    const geo::Coordinate& at = dict.location(r.true_location).coord;
    for (measure::VpId v = 0; v < meas.vps.size(); ++v) {
      const auto rtt = meas.pings.rtt(r.id, v);
      if (!rtt) continue;
      EXPECT_GE(*rtt + 1e-9, geo::min_rtt_ms(at, meas.vps[v].coord));
    }
  }
}

TEST(Probing, TrueLocationAlwaysConsistent) {
  WorldConfig config;
  config.seed = 17;
  config.operators = 10;
  const World world = generate_world(geo::builtin_dictionary(), config);
  const measure::Measurements meas = probe_pings(world, PingConfig{});
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  for (const topo::Router& r : world.topology.routers()) {
    EXPECT_TRUE(measure::rtt_consistent(meas.pings, meas.vps, r.id,
                                        dict.location(r.true_location).coord));
  }
}

TEST(Probing, ResponseRateRoughlyHolds) {
  WorldConfig config;
  config.seed = 19;
  config.operators = 60;
  const World world = generate_world(geo::builtin_dictionary(), config);
  PingConfig pc;
  pc.router_response_rate = 0.82;
  const measure::Measurements meas = probe_pings(world, pc);
  const double rate = static_cast<double>(meas.pings.responsive_router_count()) /
                      static_cast<double>(world.topology.size());
  EXPECT_NEAR(rate, 0.82, 0.06);
}

TEST(Probing, TracerouteSparserAndSlower) {
  // Fig. 5's premise: traceroute-observed RTTs come from fewer VPs and are
  // larger than ping RTTs.
  WorldConfig config;
  config.seed = 23;
  config.operators = 40;
  const World world = generate_world(geo::builtin_dictionary(), config);
  const measure::Measurements pings = probe_pings(world, PingConfig{});
  const measure::Measurements traces = probe_traceroutes(world, TraceConfig{});

  double ping_sum = 0, trace_sum = 0;
  std::size_t both = 0, ping_vps = 0, trace_vps = 0;
  for (const topo::Router& r : world.topology.routers()) {
    const auto p = pings.pings.closest_vp(r.id);
    const auto t = traces.pings.closest_vp(r.id);
    ping_vps += pings.pings.sample_count(r.id);
    trace_vps += traces.pings.sample_count(r.id);
    if (!p || !t) continue;
    ping_sum += p->second;
    trace_sum += t->second;
    ++both;
  }
  ASSERT_GT(both, 50u);
  EXPECT_GT(trace_sum / static_cast<double>(both), 2.0 * ping_sum / static_cast<double>(both));
  EXPECT_GT(ping_vps, 5 * trace_vps);
}

TEST(Scenario, ItdkShapesMatchTable1) {
  const ItdkScenario v4 = make_itdk(ItdkKind::kIpv4Aug20, 0.15);
  const ItdkScenario v6 = make_itdk(ItdkKind::kIpv6Nov20, 0.3);
  EXPECT_EQ(v4.pings.vps.size(), 106u);
  EXPECT_EQ(v6.pings.vps.size(), 46u);
  const double v4_rate = static_cast<double>(v4.world.topology.count_with_hostname()) /
                         static_cast<double>(v4.world.topology.size());
  const double v6_rate = static_cast<double>(v6.world.topology.count_with_hostname()) /
                         static_cast<double>(v6.world.topology.size());
  EXPECT_GT(v4_rate, 0.4);
  EXPECT_LT(v6_rate, 0.3);
}

TEST(Scenario, ValidationHasThirteenNetworks) {
  const ValidationScenario sc = make_validation(7);
  EXPECT_EQ(sc.suffixes.size(), 13u);
  EXPECT_TRUE(sc.hloc_unreachable.contains("nysernet.net"));
  // he.net must carry the canonical "ash" custom code at Ashburn.
  bool found_ash = false;
  for (const OperatorSpec& op : sc.world.operators) {
    if (op.suffix != "he.net") continue;
    for (const auto& [loc, code] : op.scheme.custom_codes) {
      if (code == "ash" && sc.world.dict->location(loc).city == "Ashburn") found_ash = true;
    }
  }
  EXPECT_TRUE(found_ash);
}

}  // namespace
}  // namespace hoiho::sim
