// Unit tests for dns/public_suffix.h.
#include "dns/public_suffix.h"

#include <gtest/gtest.h>

namespace hoiho::dns {
namespace {

TEST(Psl, BuiltinKnowsCommonTlds) {
  const PublicSuffixList& psl = PublicSuffixList::builtin();
  EXPECT_EQ(psl.public_suffix("core1.ntt.net"), "net");
  EXPECT_EQ(psl.public_suffix("x.cogentco.com"), "com");
}

TEST(Psl, SecondLevelRegistries) {
  // Paper §5.1.2 examples: .net.au and ccnw.net.au.
  const PublicSuffixList& psl = PublicSuffixList::builtin();
  EXPECT_EQ(psl.public_suffix("r1.ccnw.net.au"), "net.au");
  EXPECT_EQ(psl.registered_domain("r1.ccnw.net.au"), "ccnw.net.au");
}

TEST(Psl, RegisteredDomainIsSuffixPlusOneLabel) {
  const PublicSuffixList& psl = PublicSuffixList::builtin();
  EXPECT_EQ(psl.registered_domain("xe-0.core1.ash1.he.net"), "he.net");
  EXPECT_EQ(psl.registered_domain("hundredgige0-0-0-0.amscr6.opentransit.net"),
            "opentransit.net");
}

TEST(Psl, ApexDomain) {
  const PublicSuffixList& psl = PublicSuffixList::builtin();
  // "as8218.eu" is itself a registered domain (eu is the public suffix).
  EXPECT_EQ(psl.registered_domain("r1.as8218.eu"), "as8218.eu");
  EXPECT_EQ(psl.registered_domain("as8218.eu"), "as8218.eu");
}

TEST(Psl, NoMatchYieldsEmpty) {
  const PublicSuffixList& psl = PublicSuffixList::builtin();
  EXPECT_EQ(psl.public_suffix("foo.invalidtld"), "");
  EXPECT_EQ(psl.registered_domain("foo.invalidtld"), "");
}

TEST(Psl, BareSuffixHasNoRegisteredDomain) {
  const PublicSuffixList& psl = PublicSuffixList::builtin();
  EXPECT_EQ(psl.registered_domain("net"), "");
  EXPECT_EQ(psl.registered_domain("net.au"), "");
}

TEST(Psl, LongestRuleWins) {
  PublicSuffixList psl;
  psl.add_rule("uk");
  psl.add_rule("co.uk");
  EXPECT_EQ(psl.public_suffix("www.bbc.co.uk"), "co.uk");
  EXPECT_EQ(psl.registered_domain("www.bbc.co.uk"), "bbc.co.uk");
}

TEST(Psl, AddRuleToleratesFileNoise) {
  PublicSuffixList psl;
  psl.add_rule("// comment");
  psl.add_rule("");
  psl.add_rule("# other comment");
  psl.add_rule(".dotted");
  EXPECT_EQ(psl.rule_count(), 1u);
  EXPECT_EQ(psl.public_suffix("a.dotted"), "dotted");
}

TEST(Psl, CustomRules) {
  PublicSuffixList psl;
  psl.add_rule("internal");
  EXPECT_EQ(psl.registered_domain("r1.corp.internal"), "corp.internal");
}

}  // namespace
}  // namespace hoiho::dns
