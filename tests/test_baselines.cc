// Unit tests for the baseline implementations (DRoP, HLOC, undns, CBG,
// Shortest Ping), including the failure modes the paper attributes to each.
#include <gtest/gtest.h>

#include <deque>

#include "baselines/cbg.h"
#include "baselines/drop.h"
#include "baselines/hloc.h"
#include "baselines/shortest_ping.h"
#include "baselines/undns.h"
#include "geo/dictionary.h"
#include "sim/probing.h"

namespace hoiho::baselines {
namespace {

const geo::Coordinate kDc{38.91, -77.04};
const geo::Coordinate kLondon{51.51, -0.13};
const geo::Coordinate kTokyo{35.68, 139.69};

class BaselineTest : public ::testing::Test {
 protected:
  BaselineTest() : dict_(geo::builtin_dictionary()), meas_({}, 32) {
    meas_.vps = {
        measure::VantagePoint{"was", "us", kDc},
        measure::VantagePoint{"lon", "uk", kLondon},
        measure::VantagePoint{"tyo", "jp", kTokyo},
    };
    meas_.pings = measure::RttMatrix(32, meas_.vps.size());
  }

  void place_near(topo::RouterId r, measure::VpId vp, double rtt_ms) {
    for (measure::VpId v = 0; v < meas_.vps.size(); ++v)
      meas_.pings.record(r, v, v == vp ? rtt_ms : 300.0);
  }

  const dns::Hostname& host(std::string_view raw) {
    hostnames_.push_back(*dns::parse_hostname(raw, arena_));
    return hostnames_.back();
  }

  const geo::GeoDictionary& dict_;
  measure::Measurements meas_;
  util::Arena arena_;  // backs hostnames_ (dns::Hostname is a view)
  std::deque<dns::Hostname> hostnames_;
};

// --- DRoP --------------------------------------------------------------------

TEST_F(BaselineTest, DropLearnsPositionalRule) {
  topo::Topology topo;
  for (int i = 0; i < 4; ++i) topo.add_router();
  place_near(0, 1, 3.0);  // lhr router near London
  place_near(1, 2, 3.0);  // nrt router near Tokyo
  place_near(2, 0, 3.0);  // iad router near DC
  place_near(3, 1, 3.0);  // lon router near London
  topo.add_interface(0, "a1", "cr1.lhr2.x360.net");
  topo.add_interface(1, "a2", "cr1.nrt1.x360.net");
  topo.add_interface(2, "a3", "cr2.iad3.x360.net");
  topo.add_interface(3, "a4", "cr9.lon1.x360.net");

  Drop drop(dict_);
  drop.train(topo, meas_);
  const DropRule* rule = drop.rule("x360.net");
  ASSERT_NE(rule, nullptr);
  EXPECT_EQ(rule->type, geo::HintType::kIata);
  EXPECT_EQ(rule->pos_from_end, 0u);
  EXPECT_EQ(rule->label_count, 2u);

  const auto loc = drop.locate(host("cr5.lhr9.x360.net"));
  ASSERT_TRUE(loc.has_value());
  EXPECT_EQ(dict_.location(*loc).city, "London");
}

TEST_F(BaselineTest, DropMissesExtraSegments) {
  // Fig. 2's limitation: the rule pins the label count.
  topo::Topology topo;
  for (int i = 0; i < 4; ++i) topo.add_router();
  place_near(0, 1, 3.0);  // lhr router near London
  place_near(1, 2, 3.0);  // nrt router near Tokyo
  place_near(2, 0, 3.0);  // iad router near DC
  place_near(3, 1, 3.0);  // lon router near London
  topo.add_interface(0, "a1", "cr1.lhr2.x360.net");
  topo.add_interface(1, "a2", "cr1.nrt1.x360.net");
  topo.add_interface(2, "a3", "cr2.iad3.x360.net");
  topo.add_interface(3, "a4", "cr9.lon1.x360.net");
  Drop drop(dict_);
  drop.train(topo, meas_);
  EXPECT_FALSE(drop.locate(host("0.ge-0-0-0.cr5.lhr9.x360.net")).has_value());
}

TEST_F(BaselineTest, DropNoCustomHints) {
  // DRoP interprets "ash" verbatim as Nashua even when RTTs say otherwise.
  topo::Topology topo;
  for (int i = 0; i < 4; ++i) {
    const topo::RouterId r = topo.add_router();
    place_near(r, 0, 2.0);  // all near DC
  }
  topo.add_interface(0, "a1", "cr1.iad2.he0.net");
  topo.add_interface(1, "a2", "cr1.wdc1.he0.net");  // not a dictionary code
  topo.add_interface(2, "a3", "cr2.ash3.he0.net");
  topo.add_interface(3, "a4", "cr9.ric1.he0.net");
  Drop drop(dict_);
  drop.train(topo, meas_);
  const auto loc = drop.locate(host("cr7.ash1.he0.net"));
  if (loc.has_value()) {
    EXPECT_EQ(dict_.location(*loc).city, "Nashua");
  }
}

TEST_F(BaselineTest, DropMajorityRuleRejectsNoise) {
  // Most extractions inconsistent -> no rule.
  topo::Topology topo;
  for (int i = 0; i < 4; ++i) {
    const topo::RouterId r = topo.add_router();
    place_near(r, 2, 2.0);  // all in Tokyo
  }
  topo.add_interface(0, "a1", "cr1.lhr2.y360.net");  // says London
  topo.add_interface(1, "a2", "cr1.lon1.y360.net");
  topo.add_interface(2, "a3", "cr2.iad3.y360.net");
  topo.add_interface(3, "a4", "cr9.sea1.y360.net");
  Drop drop(dict_);
  drop.train(topo, meas_);
  EXPECT_EQ(drop.rule("y360.net"), nullptr);
}

TEST_F(BaselineTest, DropLearnsMidLabelSegmentRule) {
  // Geohints embedded mid-label ("xe-4-16-jfk4-br9") need the dash-segment
  // dimension of DRoP's rules.
  topo::Topology topo;
  for (int i = 0; i < 4; ++i) topo.add_router();
  place_near(0, 1, 3.0);
  place_near(1, 2, 3.0);
  place_near(2, 0, 3.0);
  place_near(3, 1, 3.0);
  topo.add_interface(0, "a1", "xe-4-16-lhr4-br9.bb.z360.net");
  topo.add_interface(1, "a2", "ae-2-9-nrt1-cr2.bb.z360.net");
  topo.add_interface(2, "a3", "te-7-18-iad11-rtr16.bb.z360.net");
  topo.add_interface(3, "a4", "hu-9-29-lon9-br26.bb.z360.net");
  Drop drop(dict_);
  drop.train(topo, meas_);
  const DropRule* rule = drop.rule("z360.net");
  ASSERT_NE(rule, nullptr);
  EXPECT_EQ(rule->seg_count, 5u);
  EXPECT_EQ(rule->seg_pos, 3u);
  const auto loc = drop.locate(host("ge-1-2-sea3-p4.bb.z360.net"));
  ASSERT_TRUE(loc.has_value());
  EXPECT_EQ(dict_.location(*loc).city, "Seattle");
  // A hostname with a different dash structure does not match the rule.
  EXPECT_FALSE(drop.locate(host("ge-1-sea3-p4.bb.z360.net")).has_value());
}

TEST_F(BaselineTest, DropRetentionDropsSuffixes) {
  topo::Topology topo;
  for (int i = 0; i < 4; ++i) topo.add_router();
  place_near(0, 1, 3.0);
  place_near(1, 2, 3.0);
  place_near(2, 0, 3.0);
  place_near(3, 1, 3.0);
  topo.add_interface(0, "a1", "cr1.lhr2.w360.net");
  topo.add_interface(1, "a2", "cr1.nrt1.w360.net");
  topo.add_interface(2, "a3", "cr2.iad3.w360.net");
  topo.add_interface(3, "a4", "cr9.lon1.w360.net");
  DropConfig config;
  config.rule_retention = 0.0;  // the 2013 database knew none of this
  Drop drop(dict_, config);
  drop.train(topo, meas_);
  EXPECT_EQ(drop.rule_count(), 0u);
}

// --- HLOC --------------------------------------------------------------------

TEST_F(BaselineTest, HlocVerifiesTrueHint) {
  place_near(0, 1, 3.0);
  Hloc hloc(dict_);
  const auto loc = hloc.locate(host("cr1.lhr2.example.net"), 0, meas_);
  ASSERT_TRUE(loc.has_value());
  EXPECT_EQ(dict_.location(*loc).city, "London");
}

TEST_F(BaselineTest, HlocConfirmationBias) {
  // A Tokyo router with a hostname containing "lon": HLOC asks only the
  // London-area VP... which has a large RTT, so it is not verified. But a
  // token matching Tokyo *and* a wrong token matching a city near another
  // VP can both verify; the Frankfurt example of §6.1 is modelled by a
  // hostname with two codes where the wrong one also verifies.
  place_near(1, 2, 3.0);
  place_near(2, 0, 3.0);
  Hloc hloc(dict_);
  // Router near DC whose hostname contains "iad" (true) and "cic" (Chico,
  // CA — wrong, and its nearest VP is >1000 km away so never verified).
  const auto loc = hloc.locate(host("cic-gw.iad1.example.net"), 2, meas_);
  ASSERT_TRUE(loc.has_value());
  EXPECT_EQ(dict_.location(*loc).city, "Washington");
}

TEST_F(BaselineTest, HlocWrongCandidateCanWin) {
  // Both tokens near VPs with small RTTs: HLOC picks by population and can
  // be wrong — a router in DC labelled iad but also containing "nyc"
  // (population tiebreak selects New York).
  place_near(3, 0, 4.0);
  meas_.pings.record(3, 1, 80.0);
  HlocConfig config;
  config.vp_radius_km = 600.0;  // DC VP can "verify" NYC (330 km away)
  Hloc biased(dict_, config);
  const auto loc = biased.locate(host("nyc-po1.iad2.example.net"), 3, meas_);
  ASSERT_TRUE(loc.has_value());
  EXPECT_EQ(dict_.location(*loc).city, "New York");
}

TEST_F(BaselineTest, HlocUnreachableRouterYieldsNothing) {
  place_near(4, 0, 2.0);
  Hloc hloc(dict_);
  EXPECT_FALSE(hloc.locate(host("cr1.iad2.nyser0.net"), 4, meas_, /*reachable=*/false)
                   .has_value());
}

TEST_F(BaselineTest, HlocBlocklistSuppressesTokens) {
  place_near(5, 0, 2.0);
  Hloc hloc(dict_);
  hloc.block("iad");
  EXPECT_FALSE(hloc.locate(host("cr1.iad2.example.net"), 5, meas_).has_value());
}

TEST_F(BaselineTest, HlocNoCustomHintsOnAsh) {
  // "ash" on a DC-area router: HLOC cannot learn the custom meaning.
  // Here the DC VP happens to be within range of Nashua, and its 2 ms
  // sample refutes Nashua outright — so HLOC returns nothing at all (a
  // false negative; with sparser VPs it reports Nashua, a false positive).
  place_near(6, 0, 2.0);
  Hloc hloc(dict_);
  EXPECT_FALSE(hloc.locate(host("core1.ash1.example.net"), 6, meas_).has_value());
}

// --- undns -------------------------------------------------------------------

TEST_F(BaselineTest, UndnsKnowsOldCodesOnly) {
  sim::World world;
  world.dict = &dict_;
  world.vps = meas_.vps;
  sim::OperatorSpec op;
  op.suffix = "old.net";
  op.scheme.hint_role = core::Role::kIata;
  op.scheme.labels = {{sim::Part::role(), sim::Part::num()},
                      {sim::Part::geo(), sim::Part::num()}};
  for (geo::LocationId id : dict_.lookup(geo::HintType::kIata, "lhr")) op.footprint.push_back(id);
  for (geo::LocationId id : dict_.lookup(geo::HintType::kIata, "nrt")) op.footprint.push_back(id);
  op.router_count = 6;
  util::Rng rng(1);
  sim::add_operator(world, op, 1.0, 0.0, rng);

  UndnsConfig config;
  config.suffix_coverage = 1.0;
  config.code_coverage = 1.0;
  const Undns undns = Undns::from_world(world, config);
  EXPECT_EQ(undns.rule_count(), 1u);
  const auto loc = undns.locate(host("cr1.lhr7.old.net"));
  ASSERT_TRUE(loc.has_value());
  EXPECT_EQ(dict_.location(*loc).city, "London");
  // A code the 2014-era database never saw:
  EXPECT_FALSE(undns.locate(host("cr1.sea7.old.net")).has_value());
  // A suffix it never covered:
  EXPECT_FALSE(undns.locate(host("cr1.lhr7.new.net")).has_value());
}

TEST_F(BaselineTest, UndnsKnowsCustomCodes) {
  // The human who wrote undns rules interpreted custom codes correctly.
  sim::World world;
  world.dict = &dict_;
  sim::OperatorSpec op;
  op.suffix = "he0.net";
  op.scheme.hint_role = core::Role::kIata;
  op.scheme.labels = {{sim::Part::geo(), sim::Part::num()}};
  geo::LocationId ashburn = geo::kInvalidLocation;
  for (geo::LocationId id : dict_.lookup(geo::HintType::kCityName, "ashburn"))
    if (dict_.location(id).state == "va") ashburn = id;
  op.scheme.custom_codes[ashburn] = "ash";
  op.footprint = {ashburn};
  op.router_count = 3;
  util::Rng rng(1);
  sim::add_operator(world, op, 1.0, 0.0, rng);

  UndnsConfig config;
  config.suffix_coverage = 1.0;
  config.code_coverage = 1.0;
  const Undns undns = Undns::from_world(world, config);
  const auto loc = undns.locate(host("ash3.he0.net"));
  ASSERT_TRUE(loc.has_value());
  EXPECT_EQ(dict_.location(*loc).city, "Ashburn");
}

// --- CBG / Shortest Ping -----------------------------------------------------

TEST_F(BaselineTest, CbgBoundsTarget) {
  // Router near DC: 2 ms from the DC VP, large elsewhere.
  place_near(7, 0, 2.0);
  const auto result = cbg_locate(meas_, 7);
  ASSERT_TRUE(result.has_value());
  EXPECT_LT(geo::distance_km(result->estimate, kDc), 400.0);
  EXPECT_GT(result->feasible_cells, 0u);
}

TEST_F(BaselineTest, CbgTighterWithSmallerRtt) {
  place_near(8, 0, 2.0);
  place_near(9, 0, 30.0);
  const auto tight = cbg_locate(meas_, 8);
  const auto loose = cbg_locate(meas_, 9);
  ASSERT_TRUE(tight.has_value());
  ASSERT_TRUE(loose.has_value());
  EXPECT_LT(tight->error_km, loose->error_km);
}

TEST_F(BaselineTest, CbgNoSamples) {
  EXPECT_FALSE(cbg_locate(meas_, 30).has_value());
}

TEST_F(BaselineTest, ShortestPingPicksClosestVp) {
  place_near(10, 2, 5.0);
  const auto result = shortest_ping(meas_, 10);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->vp, 2u);
  EXPECT_DOUBLE_EQ(result->rtt_ms, 5.0);
  EXPECT_NEAR(geo::distance_km(result->coord, kTokyo), 0.0, 1.0);
}

TEST_F(BaselineTest, ShortestPingNoSamples) {
  EXPECT_FALSE(shortest_ping(meas_, 31).has_value());
}

}  // namespace
}  // namespace hoiho::baselines
