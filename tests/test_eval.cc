// Unit tests for stage 3 evaluation (core/eval.h) — the §5.3 TP/FP/FN/UNK
// classification, on the paper's own examples.
#include "core/eval.h"

#include <gtest/gtest.h>

#include <deque>

#include "core/apparent.h"
#include "geo/dictionary.h"
#include "regex/parser.h"

namespace hoiho::core {
namespace {

class EvalTest : public ::testing::Test {
 protected:
  EvalTest() : dict_(geo::builtin_dictionary()), meas_({}, 32) {
    meas_.vps = {
        measure::VantagePoint{"was", "us", {38.91, -77.04}},
        measure::VantagePoint{"lon", "uk", {51.51, -0.13}},
        measure::VantagePoint{"tyo", "jp", {35.68, 139.69}},
    };
    meas_.pings = measure::RttMatrix(32, meas_.vps.size());
  }

  void place_near(topo::RouterId r, measure::VpId vp, double rtt_ms) {
    for (measure::VpId v = 0; v < meas_.vps.size(); ++v)
      meas_.pings.record(r, v, v == vp ? rtt_ms : 300.0);
  }

  TaggedHostname tag(topo::RouterId r, std::string_view raw) {
    hostnames_.push_back(*dns::parse_hostname(raw, arena_));
    const ApparentTagger tagger(dict_, meas_, {});
    return tagger.tag(topo::HostnameRef{r, &hostnames_.back()});
  }

  static NamingConvention zayo_nc(bool with_cc) {
    NamingConvention nc;
    nc.suffix = "zayo.com";
    GeoRegex gr;
    if (with_cc) {
      gr.regex = *rx::parse("^.+\\.([a-z]{3})\\d+\\.([a-z]{2})\\.[a-z]{3}\\.zayo\\.com$");
      gr.plan.roles = {Role::kIata, Role::kCountryCode};
    } else {
      gr.regex = *rx::parse("^.+\\.([a-z]{3})\\d+\\.[a-z]{2}\\.[a-z]{3}\\.zayo\\.com$");
      gr.plan.roles = {Role::kIata};
    }
    nc.regexes.push_back(std::move(gr));
    return nc;
  }

  const geo::GeoDictionary& dict_;
  measure::Measurements meas_;
  util::Arena arena_;  // backs hostnames_ (dns::Hostname is a view)
  std::deque<dns::Hostname> hostnames_;
};

TEST_F(EvalTest, TpWhenHintAndAnnotationExtracted) {
  // Paper: extracting "lhr, uk" from fig. 6a is a TP.
  place_near(0, 1, 2.0);
  const Evaluator ev(dict_, meas_);
  const auto r = ev.evaluate_one(zayo_nc(true), tag(0, "zayo-ntt.mpr1.lhr15.uk.zip.zayo.com"));
  EXPECT_EQ(r.outcome, Outcome::kTP);
  EXPECT_EQ(r.code, "lhr");
  EXPECT_EQ(r.cc, "uk");
  ASSERT_NE(r.best_location, geo::kInvalidLocation);
  EXPECT_EQ(dict_.location(r.best_location).city, "London");
}

TEST_F(EvalTest, FnWhenAnnotationMissed) {
  // Paper: extracting only "lhr" (not "uk") from fig. 6a is a FN.
  place_near(1, 1, 2.0);
  const Evaluator ev(dict_, meas_);
  const auto r = ev.evaluate_one(zayo_nc(false), tag(1, "zayo-ntt.mpr1.lhr15.uk.zip.zayo.com"));
  EXPECT_EQ(r.outcome, Outcome::kFN);
}

TEST_F(EvalTest, FpWhenNotRttConsistent) {
  // A regex that extracts "ntt" (an IATA-shaped string in our atlas? it is
  // not) — use "lhr" against a router that is in Tokyo instead.
  place_near(2, 2, 2.0);
  const Evaluator ev(dict_, meas_);
  const auto r = ev.evaluate_one(zayo_nc(false), tag(2, "zayo-a.mpr1.lhr15.xx.zip.zayo.com"));
  EXPECT_EQ(r.outcome, Outcome::kFP);
}

TEST_F(EvalTest, UnkWhenCodeNotInDictionary) {
  place_near(3, 1, 2.0);
  const Evaluator ev(dict_, meas_);
  const auto r = ev.evaluate_one(zayo_nc(false), tag(3, "zayo-a.mpr1.ldn15.xx.zip.zayo.com"));
  EXPECT_EQ(r.outcome, Outcome::kUNK);
  EXPECT_EQ(r.code, "ldn");
}

TEST_F(EvalTest, FnWhenNoMatchButApparentHint) {
  place_near(4, 1, 2.0);
  NamingConvention nc;
  nc.suffix = "zayo.com";
  GeoRegex gr;
  gr.regex = *rx::parse("^nope\\.([a-z]{3})\\.zayo\\.com$");
  gr.plan.roles = {Role::kIata};
  nc.regexes.push_back(std::move(gr));
  const Evaluator ev(dict_, meas_);
  const auto r = ev.evaluate_one(nc, tag(4, "zayo-a.mpr1.lhr15.uk.zip.zayo.com"));
  EXPECT_EQ(r.outcome, Outcome::kFN);
  EXPECT_EQ(r.regex_index, -1);
}

TEST_F(EvalTest, NoneWhenNoMatchAndNoHint) {
  place_near(5, 1, 2.0);
  const Evaluator ev(dict_, meas_);
  const auto r = ev.evaluate_one(zayo_nc(false), tag(5, "loopback0.zayo.com"));
  EXPECT_EQ(r.outcome, Outcome::kNone);
}

TEST_F(EvalTest, LearnedDictionaryOverridesReference) {
  // "ash" on an Ashburn router: FP against Nashua, TP once learned.
  place_near(6, 0, 1.0);
  NamingConvention nc;
  nc.suffix = "he.net";
  GeoRegex gr;
  gr.regex = *rx::parse("^.+\\.([a-z]{3})\\d+\\.he\\.net$");
  gr.plan.roles = {Role::kIata};
  nc.regexes.push_back(std::move(gr));

  const Evaluator ev(dict_, meas_);
  const TaggedHostname th = tag(6, "100ge1-2.core1.ash1.he.net");
  EXPECT_EQ(ev.evaluate_one(nc, th).outcome, Outcome::kFP);

  geo::LocationId ashburn = geo::kInvalidLocation;
  for (geo::LocationId id : dict_.lookup(geo::HintType::kCityName, "ashburn"))
    if (dict_.location(id).state == "va") ashburn = id;
  nc.learned[{geo::HintType::kIata, "ash"}] = ashburn;
  const auto r = ev.evaluate_one(nc, th);
  EXPECT_EQ(r.outcome, Outcome::kTP);
  EXPECT_TRUE(r.via_learned);
  EXPECT_EQ(r.best_location, ashburn);
}

TEST_F(EvalTest, AnnotationNarrowsAmbiguousCity) {
  // "london" + "ca" country code must resolve to London, Ontario.
  place_near(7, 0, 12.0);  // DC -> London ON is ~700 km
  NamingConvention nc;
  nc.suffix = "example.net";
  GeoRegex gr;
  gr.regex = *rx::parse("^([a-z]+)\\d*\\.([a-z]{2})\\.example\\.net$");
  gr.plan.roles = {Role::kCityName, Role::kCountryCode};
  nc.regexes.push_back(std::move(gr));
  const Evaluator ev(dict_, meas_);
  const auto r = ev.evaluate_one(nc, tag(7, "london1.ca.example.net"));
  EXPECT_EQ(r.outcome, Outcome::kTP);
  ASSERT_NE(r.best_location, geo::kInvalidLocation);
  EXPECT_EQ(dict_.location(r.best_location).country, "ca");
}

TEST_F(EvalTest, ContradictoryAnnotationIsUnk) {
  place_near(8, 1, 2.0);
  const Evaluator ev(dict_, meas_);
  // "lhr" with country "jp" matches nothing in any dictionary.
  const auto r = ev.evaluate_one(zayo_nc(true), tag(8, "zayo-a.mpr1.lhr15.jp.zip.zayo.com"));
  EXPECT_EQ(r.outcome, Outcome::kUNK);
}

TEST_F(EvalTest, FirstMatchingRegexWins) {
  place_near(9, 1, 2.0);
  NamingConvention nc;
  nc.suffix = "zayo.com";
  GeoRegex a, b;
  a.regex = *rx::parse("^nope\\.zayo\\.com$");
  a.plan.roles = {};
  b.regex = *rx::parse("^.+\\.([a-z]{3})\\d+\\.[a-z]{2}\\.[a-z]{3}\\.zayo\\.com$");
  b.plan.roles = {Role::kIata};
  nc.regexes.push_back(std::move(a));
  nc.regexes.push_back(std::move(b));
  const Evaluator ev(dict_, meas_);
  const auto r = ev.evaluate_one(nc, tag(9, "zayo-a.mpr1.lhr15.uk.zip.zayo.com"));
  EXPECT_EQ(r.regex_index, 1);
}

TEST_F(EvalTest, CountsAndUniqueCodes) {
  place_near(10, 1, 2.0);   // London
  place_near(11, 2, 2.0);   // Tokyo
  place_near(12, 1, 2.0);   // London again
  std::vector<TaggedHostname> tagged;
  tagged.push_back(tag(10, "zayo-a.mpr1.lhr15.uk.zip.zayo.com"));
  tagged.push_back(tag(11, "zayo-b.mpr1.nrt2.jp.zip.zayo.com"));
  tagged.push_back(tag(12, "zayo-c.mpr2.lon7.uk.zip.zayo.com"));
  const Evaluator ev(dict_, meas_);
  const NcEvaluation result = ev.evaluate(zayo_nc(true), tagged);
  EXPECT_EQ(result.counts.tp, 3u);
  EXPECT_EQ(result.counts.fp, 0u);
  EXPECT_EQ(result.unique_count(), 3u);  // lhr, nrt, lon
  EXPECT_EQ(result.counts.atp(), 3);
  EXPECT_DOUBLE_EQ(result.counts.ppv(), 1.0);
  ASSERT_EQ(result.regex_unique_tp.size(), 1u);
  EXPECT_EQ(result.regex_unique_tp[0].size(), 3u);
}

TEST_F(EvalTest, AtpPenalizesEverything) {
  EvalCounts c;
  c.tp = 5;
  c.fp = 1;
  c.fn = 1;
  c.unk = 1;
  EXPECT_EQ(c.atp(), 2);
  EXPECT_NEAR(c.ppv(), 5.0 / 6.0, 1e-12);
}

TEST_F(EvalTest, ChooseLocationPrefersFacilityThenPopulation) {
  const Evaluator ev(dict_, meas_);
  geo::LocationId ashburn = geo::kInvalidLocation, ashland_va = geo::kInvalidLocation,
                  ashland_or = geo::kInvalidLocation;
  for (geo::LocationId id : dict_.lookup(geo::HintType::kCityName, "ashburn"))
    if (dict_.location(id).state == "va") ashburn = id;
  for (geo::LocationId id : dict_.lookup(geo::HintType::kCityName, "ashland")) {
    if (dict_.location(id).state == "va") ashland_va = id;
    if (dict_.location(id).state == "or") ashland_or = id;
  }
  // Ashburn has a facility: wins regardless of order.
  const std::vector<geo::LocationId> a = {ashland_va, ashburn, ashland_or};
  EXPECT_EQ(ev.choose_location(a), ashburn);
  // Without facilities, population wins (Ashland OR 21k > Ashland VA 7.5k).
  const std::vector<geo::LocationId> b = {ashland_va, ashland_or};
  EXPECT_EQ(ev.choose_location(b), ashland_or);
}

}  // namespace
}  // namespace hoiho::core
