// Unit tests for the binary model format (core/ncb.h): round-trip fidelity
// against the text format, format autodetection, and — mirroring
// test_nc_io.cc's hostile-input coverage — named errors (never UB) for bad
// magic, truncated or overlapping sections, out-of-range offsets and string
// refs, misaligned sections, and checksum mismatches.
#include "core/ncb.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstring>
#include <fstream>

#include "core/geolocate.h"
#include "io/load_report.h"
#include "regex/parser.h"
#include "util/failpoint.h"
#include "util/rng.h"

namespace hoiho::core {
namespace {

geo::LocationId find_city(const geo::GeoDictionary& dict, std::string_view city,
                          std::string_view country, std::string_view state = "") {
  for (geo::LocationId id : dict.lookup(geo::HintType::kCityName,
                                        geo::squash_place_name(city))) {
    if (!geo::same_country(dict.location(id).country, country)) continue;
    if (!state.empty() && dict.location(id).state != state) continue;
    return id;
  }
  return geo::kInvalidLocation;
}

std::vector<StoredConvention> sample(const geo::GeoDictionary& dict) {
  std::vector<StoredConvention> out(3);
  out[0].nc.suffix = "he.net";
  out[0].cls = NcClass::kGood;
  GeoRegex a;
  a.regex = *rx::parse("^.+\\.([a-z]{3})\\d+\\.he\\.net$");
  a.plan.roles = {Role::kIata};
  out[0].nc.regexes.push_back(std::move(a));
  out[0].nc.learned[{geo::HintType::kIata, "ash"}] = find_city(dict, "Ashburn", "us", "va");

  out[1].nc.suffix = "windstream.net";
  out[1].cls = NcClass::kPromising;
  GeoRegex b;
  b.regex = *rx::parse("^.+\\.([a-z]{4})\\d+-([a-z]{2})\\.([a-z]{2})\\.windstream\\.net$");
  b.plan.roles = {Role::kClli4, Role::kClli2, Role::kCountryCode};
  out[1].nc.regexes.push_back(std::move(b));

  out[2].nc.suffix = "poor.example";
  out[2].cls = NcClass::kPoor;
  GeoRegex c;
  c.regex = *rx::parse("^([a-z]{3})\\.poor\\.example$");
  c.plan.roles = {Role::kIata};
  out[2].nc.regexes.push_back(std::move(c));
  return out;
}

const std::vector<std::string>& probes() {
  static const std::vector<std::string> hosts = {
      "100ge1.core1.ash2.he.net",  "10ge.sea1.he.net",     "ge0.unknown.he.net",
      "r1.rest4501-ge.va.windstream.net", "nope.example.org", "abc.poor.example",
      "",                          "x.he.net",             "core1.lax1.he.net",
  };
  return hosts;
}

// Answers from two geolocators must be byte-identical on every probe.
void expect_same_answers(const Geolocator& a, const Geolocator& b) {
  for (const std::string& h : probes()) {
    const auto ra = a.locate_detailed(h);
    const auto rb = b.locate_detailed(h);
    ASSERT_EQ(ra.has_value(), rb.has_value()) << h;
    if (!ra) continue;
    EXPECT_EQ(ra->best.location, rb->best.location) << h;
    EXPECT_EQ(ra->best.code, rb->best.code) << h;
    EXPECT_EQ(ra->best.role, rb->best.role) << h;
    EXPECT_EQ(ra->best.via_learned, rb->best.via_learned) << h;
    EXPECT_EQ(ra->best.suffix, rb->best.suffix) << h;
    EXPECT_EQ(ra->candidates, rb->candidates) << h;
    EXPECT_EQ(ra->hint, rb->hint) << h;
    EXPECT_EQ(ra->cls, rb->cls) << h;
  }
}

// Recompute both hashes after a test mutates header/table/payload bytes, so
// the targeted structural error — not a checksum mismatch — is what the
// loader reports.
void rehash(std::string& img) {
  ncb::FileHeader hdr;
  std::memcpy(&hdr, img.data(), sizeof(hdr));
  const std::size_t table_end = sizeof(ncb::FileHeader) + hdr.section_count * sizeof(ncb::Section);
  const std::size_t payload_off = (table_end + 15) & ~std::size_t{15};
  hdr.payload_hash = fnv1a_hash(std::string_view(img).substr(payload_off));
  hdr.header_hash = 0;
  std::uint64_t h = kFnvSeed;
  h = fnv1a_hash({reinterpret_cast<const char*>(&hdr), sizeof(hdr)}, h);
  h = fnv1a_hash(std::string_view(img).substr(sizeof(ncb::FileHeader),
                                              table_end - sizeof(ncb::FileHeader)),
                 h);
  hdr.header_hash = h;
  std::memcpy(img.data(), &hdr, sizeof(hdr));
}

ncb::Section read_section(const std::string& img, ncb::SectionKind kind) {
  ncb::FileHeader hdr;
  std::memcpy(&hdr, img.data(), sizeof(hdr));
  for (std::uint32_t i = 0; i < hdr.section_count; ++i) {
    ncb::Section s;
    std::memcpy(&s, img.data() + sizeof(hdr) + i * sizeof(s), sizeof(s));
    if (s.kind == static_cast<std::uint32_t>(kind)) return s;
  }
  ADD_FAILURE() << "section not found";
  return {};
}

void write_section(std::string& img, const ncb::Section& s) {
  ncb::FileHeader hdr;
  std::memcpy(&hdr, img.data(), sizeof(hdr));
  for (std::uint32_t i = 0; i < hdr.section_count; ++i) {
    ncb::Section cur;
    std::memcpy(&cur, img.data() + sizeof(hdr) + i * sizeof(cur), sizeof(cur));
    if (cur.kind == s.kind) {
      std::memcpy(img.data() + sizeof(hdr) + i * sizeof(cur), &s, sizeof(s));
      return;
    }
  }
}

std::string expect_rejected(std::string_view img, std::string_view why) {
  std::string error;
  io::LoadReport report;
  const auto m = NcbModel::from_bytes(img, &error, &report);
  EXPECT_EQ(m, nullptr) << why;
  EXPECT_FALSE(error.empty()) << why;
  EXPECT_EQ(report.error, error) << why;
  EXPECT_NE(error.find("ncb:"), std::string::npos) << why << ": " << error;
  return error;
}

TEST(NcbIo, DetectFormat) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  const std::string img = serialize_conventions_ncb(sample(dict), dict);
  EXPECT_EQ(detect_model_format(img), ModelFormat::kNcb);
  EXPECT_EQ(detect_model_format("# hoiho-geo naming conventions v1\n"), ModelFormat::kText);
  EXPECT_EQ(detect_model_format(""), ModelFormat::kText);
  EXPECT_EQ(detect_model_format("hoihoNC"), ModelFormat::kText);  // short prefix
  EXPECT_EQ(to_string(ModelFormat::kNcb), "ncb");
  EXPECT_EQ(to_string(ModelFormat::kText), "text");
}

TEST(NcbIo, RoundTripToStored) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  const auto original = sample(dict);
  const std::string img = serialize_conventions_ncb(original, dict);

  std::string error;
  io::LoadReport report;
  const auto m = NcbModel::from_bytes(img, &error, &report);
  ASSERT_NE(m, nullptr) << error;
  EXPECT_EQ(m->convention_count(), 3u);
  EXPECT_EQ(report.records, 3u);
  EXPECT_FALSE(m->mapped());

  const auto stored = m->to_stored(dict, &error);
  ASSERT_TRUE(stored.has_value()) << error;
  ASSERT_EQ(stored->size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ((*stored)[i].nc.suffix, original[i].nc.suffix);
    EXPECT_EQ((*stored)[i].cls, original[i].cls);
    ASSERT_EQ((*stored)[i].nc.regexes.size(), original[i].nc.regexes.size());
    for (std::size_t r = 0; r < original[i].nc.regexes.size(); ++r) {
      EXPECT_EQ((*stored)[i].nc.regexes[r].regex.to_string(),
                original[i].nc.regexes[r].regex.to_string());
      EXPECT_EQ((*stored)[i].nc.regexes[r].plan.roles, original[i].nc.regexes[r].plan.roles);
    }
    EXPECT_EQ((*stored)[i].nc.learned, original[i].nc.learned);
  }
}

TEST(NcbIo, BuildGeolocatorMatchesTextPath) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  const auto conventions = sample(dict);

  Geolocator text_path(dict);
  for (const StoredConvention& sc : conventions)
    if (sc.cls != NcClass::kPoor) text_path.add(sc.nc, sc.cls);

  const std::string img = serialize_conventions_ncb(conventions, dict);
  std::string error;
  const auto m = NcbModel::from_bytes(img, &error);
  ASSERT_NE(m, nullptr) << error;
  Geolocator ncb_path(dict);
  m->build_geolocator(ncb_path);
  EXPECT_EQ(ncb_path.convention_count(), text_path.convention_count());
  EXPECT_EQ(ncb_path.program_count(), text_path.program_count());
  expect_same_answers(text_path, ncb_path);

  // include_poor widens coverage to the kPoor block.
  Geolocator with_poor(dict);
  m->build_geolocator(with_poor, nullptr, /*include_poor=*/true);
  EXPECT_EQ(with_poor.convention_count(), 3u);
  EXPECT_TRUE(with_poor.locate("abc.poor.example").has_value() ||
              !with_poor.locate("abc.poor.example").has_value());  // no crash; code unknown ok
}

TEST(NcbIo, MmapOpenAnswersMatchHeapLoad) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  const auto conventions = sample(dict);
  const std::string path = "test_ncb_model_" + std::to_string(::getpid()) + ".ncb";
  std::string error;
  ASSERT_TRUE(save_conventions_ncb_to_file(path, conventions, dict, &error)) << error;

  const auto mapped = NcbModel::open(path, &error);
  ASSERT_NE(mapped, nullptr) << error;
  EXPECT_TRUE(mapped->mapped());
  EXPECT_GT(mapped->bytes_mapped(), 0u);

  const std::string img = serialize_conventions_ncb(conventions, dict);
  const auto heap = NcbModel::from_bytes(img, &error);
  ASSERT_NE(heap, nullptr) << error;

  Geolocator from_map(dict), from_heap(dict);
  mapped->build_geolocator(from_map);
  heap->build_geolocator(from_heap);
  expect_same_answers(from_heap, from_map);

  // The Geolocator's matchers are views into the mapping; the model handle
  // going away must not invalidate them (keepalive contract).
  {
    Geolocator views(dict);
    {
      const auto scoped = NcbModel::open(path, &error);
      ASSERT_NE(scoped, nullptr);
      scoped->build_geolocator(views);
    }
    const auto loc = views.locate("100ge1.core1.ash2.he.net");
    ASSERT_TRUE(loc.has_value());
    EXPECT_EQ(dict.location(loc->location).city, "Ashburn");
  }
  ::unlink(path.c_str());
}

TEST(NcbIo, SaveModelToFileDispatchesOnExtension) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  const auto conventions = sample(dict);
  const std::string base = "test_ncb_dispatch_" + std::to_string(::getpid());
  std::string error;
  ASSERT_TRUE(save_model_to_file(base + ".ncb", conventions, dict, &error)) << error;
  ASSERT_TRUE(save_model_to_file(base + ".txt", conventions, dict, &error)) << error;

  std::ifstream bin(base + ".ncb", std::ios::binary);
  std::ifstream txt(base + ".txt", std::ios::binary);
  std::string bin_head(8, '\0'), txt_head(8, '\0');
  bin.read(bin_head.data(), 8);
  txt.read(txt_head.data(), 8);
  EXPECT_EQ(detect_model_format(bin_head), ModelFormat::kNcb);
  EXPECT_EQ(detect_model_format(txt_head), ModelFormat::kText);
  ::unlink((base + ".ncb").c_str());
  ::unlink((base + ".txt").c_str());
}

TEST(NcbIo, SaveHonorsFailpoint) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  ASSERT_TRUE(util::failpoint::configure("nc.save", "error:EIO"));
  std::string error;
  const bool ok =
      save_conventions_ncb_to_file("should_not_exist.ncb", sample(dict), dict, &error);
  util::failpoint::reset();
  EXPECT_FALSE(ok);
  EXPECT_NE(error.find("injected"), std::string::npos) << error;
}

TEST(NcbIo, EmptyModel) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  const std::string img = serialize_conventions_ncb({}, dict);
  std::string error;
  const auto m = NcbModel::from_bytes(img, &error);
  ASSERT_NE(m, nullptr) << error;
  EXPECT_EQ(m->convention_count(), 0u);
  Geolocator g(dict);
  m->build_geolocator(g);
  EXPECT_EQ(g.convention_count(), 0u);
}

// --- hostile input ----------------------------------------------------------

TEST(NcbIo, RejectsBadMagic) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  std::string img = serialize_conventions_ncb(sample(dict), dict);
  img[0] = 'X';
  const std::string error = expect_rejected(img, "bad magic");
  EXPECT_NE(error.find("bad magic"), std::string::npos);

  // A text model fed to the binary loader is also "bad magic", not UB.
  expect_rejected("# hoiho-geo naming conventions v1\nS,he.net,good\n", "text file");
  expect_rejected("", "empty buffer");
}

TEST(NcbIo, RejectsUnsupportedVersion) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  std::string img = serialize_conventions_ncb(sample(dict), dict);
  ncb::FileHeader hdr;
  std::memcpy(&hdr, img.data(), sizeof(hdr));
  hdr.version = 999;
  std::memcpy(img.data(), &hdr, sizeof(hdr));
  rehash(img);
  const std::string error = expect_rejected(img, "version");
  EXPECT_NE(error.find("unsupported version"), std::string::npos);
}

TEST(NcbIo, RejectsTruncationAtEveryBoundary) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  const std::string img = serialize_conventions_ncb(sample(dict), dict);
  // Cut points: inside the header, at the header/table seam, inside the
  // table, at the payload seam, inside the payload, one byte short.
  const std::size_t table_end = sizeof(ncb::FileHeader) + ncb::kSectionCount * sizeof(ncb::Section);
  for (const std::size_t cut :
       {std::size_t{0}, std::size_t{7}, sizeof(ncb::FileHeader) - 1, sizeof(ncb::FileHeader),
        table_end - 1, table_end, table_end + 16, img.size() / 2, img.size() - 1}) {
    ASSERT_LT(cut, img.size());
    expect_rejected(std::string_view(img).substr(0, cut),
                    "truncated at " + std::to_string(cut));
  }
}

TEST(NcbIo, RejectsTrailingBytes) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  std::string img = serialize_conventions_ncb(sample(dict), dict);
  img += "extra";
  const std::string error = expect_rejected(img, "trailing bytes");
  EXPECT_NE(error.find("file size mismatch"), std::string::npos);
}

TEST(NcbIo, RejectsHeaderCorruption) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  std::string img = serialize_conventions_ncb(sample(dict), dict);
  // Flip one byte in the section table without rehashing: header checksum
  // must catch it before any offset is trusted.
  img[sizeof(ncb::FileHeader) + 9] ^= 0x40;
  const std::string error = expect_rejected(img, "header corruption");
  EXPECT_NE(error.find("header checksum mismatch"), std::string::npos);
}

TEST(NcbIo, RejectsPayloadCorruption) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  std::string img = serialize_conventions_ncb(sample(dict), dict);
  const ncb::Section pool = read_section(img, ncb::SectionKind::kStringPool);
  ASSERT_GT(pool.size, 0u);
  img[pool.offset] ^= 0x01;
  const std::string error = expect_rejected(img, "payload corruption");
  EXPECT_NE(error.find("payload checksum mismatch"), std::string::npos);
}

TEST(NcbIo, RejectsOutOfBoundsSection) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  std::string img = serialize_conventions_ncb(sample(dict), dict);
  ncb::Section s = read_section(img, ncb::SectionKind::kSuffixes);
  s.offset = (img.size() + 1024) & ~std::size_t{15};
  write_section(img, s);
  rehash(img);
  const std::string error = expect_rejected(img, "section offset out of bounds");
  EXPECT_NE(error.find("out of bounds"), std::string::npos);

  std::string img2 = serialize_conventions_ncb(sample(dict), dict);
  ncb::Section s2 = read_section(img2, ncb::SectionKind::kSuffixes);
  s2.size = img2.size();  // runs past EOF from a valid offset
  write_section(img2, s2);
  rehash(img2);
  expect_rejected(img2, "section size out of bounds");
}

TEST(NcbIo, RejectsMisalignedSection) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  std::string img = serialize_conventions_ncb(sample(dict), dict);
  ncb::Section s = read_section(img, ncb::SectionKind::kSuffixes);
  s.offset += 8;
  write_section(img, s);
  rehash(img);
  const std::string error = expect_rejected(img, "misaligned section");
  EXPECT_NE(error.find("misaligned"), std::string::npos);
}

TEST(NcbIo, RejectsOverlappingSections) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  std::string img = serialize_conventions_ncb(sample(dict), dict);
  const ncb::Section a = read_section(img, ncb::SectionKind::kSuffixes);
  ncb::Section b = read_section(img, ncb::SectionKind::kRegexes);
  b.offset = a.offset;  // two tables claim the same bytes
  write_section(img, b);
  rehash(img);
  const std::string error = expect_rejected(img, "overlapping sections");
  EXPECT_NE(error.find("overlapping"), std::string::npos);
}

TEST(NcbIo, RejectsRaggedSectionSize) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  std::string img = serialize_conventions_ncb(sample(dict), dict);
  ncb::Section s = read_section(img, ncb::SectionKind::kSuffixes);
  s.size -= 1;  // no longer a whole number of SuffixEntry records
  write_section(img, s);
  rehash(img);
  const std::string error = expect_rejected(img, "ragged section");
  EXPECT_NE(error.find("whole number of records"), std::string::npos);
}

TEST(NcbIo, RejectsOutOfRangeStringRef) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  std::string img = serialize_conventions_ncb(sample(dict), dict);
  const ncb::Section s = read_section(img, ncb::SectionKind::kSuffixes);
  ncb::SuffixEntry se;
  std::memcpy(&se, img.data() + s.offset, sizeof(se));
  se.suffix.len = 1u << 30;  // ref far past the string pool
  std::memcpy(img.data() + s.offset, &se, sizeof(se));
  rehash(img);
  const std::string error = expect_rejected(img, "string ref");
  EXPECT_NE(error.find("string ref out of range"), std::string::npos);
}

TEST(NcbIo, RejectsOutOfRangeMatcherIndex) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  std::string img = serialize_conventions_ncb(sample(dict), dict);
  const ncb::Section s = read_section(img, ncb::SectionKind::kSuffixes);
  ncb::SuffixEntry se;
  std::memcpy(&se, img.data() + s.offset, sizeof(se));
  se.matcher = 999;
  std::memcpy(img.data() + s.offset, &se, sizeof(se));
  rehash(img);
  const std::string error = expect_rejected(img, "matcher index");
  EXPECT_NE(error.find("matcher index out of range"), std::string::npos);
}

TEST(NcbIo, RejectsCorruptCompiledProgram) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  std::string img = serialize_conventions_ncb(sample(dict), dict);
  const ncb::Section s = read_section(img, ncb::SectionKind::kInstr);
  ASSERT_GE(s.size, sizeof(rx::Instr));
  rx::Instr in;
  std::memcpy(&in, img.data() + s.offset, sizeof(in));
  in.arg = 1u << 28;  // literal/class ref far out of range either way
  std::memcpy(img.data() + s.offset, &in, sizeof(in));
  rehash(img);
  const std::string error = expect_rejected(img, "corrupt instruction");
  EXPECT_NE(error.find("out of range"), std::string::npos);
}

// Random single-byte flips anywhere in the image: the loader must reject or
// load cleanly — never crash, hang, or trip a sanitizer. (With payload
// verification on, only flips in alignment padding can survive to a load.)
TEST(NcbIo, FuzzSingleByteFlips) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  const std::string img = serialize_conventions_ncb(sample(dict), dict);
  util::Rng rng(20260809);
  for (int iter = 0; iter < 300; ++iter) {
    std::string bad = img;
    const std::size_t at = rng.next_u64() % bad.size();
    bad[at] ^= static_cast<char>(1u << (rng.next_u64() % 8));
    std::string error;
    const auto m = NcbModel::from_bytes(bad, &error);
    if (m == nullptr) {
      EXPECT_FALSE(error.empty());
      continue;
    }
    Geolocator g(dict);
    m->build_geolocator(g);
    for (const std::string& h : probes()) g.locate(h);
  }
}

// Random truncations: every prefix must be rejected by name.
TEST(NcbIo, FuzzTruncations) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  const std::string img = serialize_conventions_ncb(sample(dict), dict);
  util::Rng rng(4242);
  for (int iter = 0; iter < 100; ++iter) {
    const std::size_t cut = rng.next_u64() % img.size();
    expect_rejected(std::string_view(img).substr(0, cut),
                    "fuzz truncation at " + std::to_string(cut));
  }
}

}  // namespace
}  // namespace hoiho::core
