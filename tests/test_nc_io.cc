// Unit tests for naming-convention serialization (core/nc_io.h) — the
// "published regex website" artifact.
#include "core/nc_io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "core/geolocate.h"
#include "regex/parser.h"

namespace hoiho::core {
namespace {

geo::LocationId find_city(const geo::GeoDictionary& dict, std::string_view city,
                          std::string_view country, std::string_view state = "") {
  for (geo::LocationId id : dict.lookup(geo::HintType::kCityName,
                                        geo::squash_place_name(city))) {
    if (!geo::same_country(dict.location(id).country, country)) continue;
    if (!state.empty() && dict.location(id).state != state) continue;
    return id;
  }
  return geo::kInvalidLocation;
}

std::vector<StoredConvention> sample(const geo::GeoDictionary& dict) {
  std::vector<StoredConvention> out(2);
  out[0].nc.suffix = "he.net";
  out[0].cls = NcClass::kGood;
  GeoRegex a;
  a.regex = *rx::parse("^.+\\.([a-z]{3})\\d+\\.he\\.net$");
  a.plan.roles = {Role::kIata};
  out[0].nc.regexes.push_back(std::move(a));
  out[0].nc.learned[{geo::HintType::kIata, "ash"}] = find_city(dict, "Ashburn", "us", "va");

  out[1].nc.suffix = "windstream.net";
  out[1].cls = NcClass::kPromising;
  GeoRegex b;
  b.regex = *rx::parse("^.+\\.([a-z]{4})\\d+-([a-z]{2})\\.([a-z]{2})\\.windstream\\.net$");
  b.plan.roles = {Role::kClli4, Role::kClli2, Role::kCountryCode};
  out[1].nc.regexes.push_back(std::move(b));
  return out;
}

TEST(NcIo, PlanTokens) {
  Plan plan;
  plan.roles = {Role::kCityName, Role::kCountryCode};
  EXPECT_EQ(plan_to_token(plan), "city+cc");
  const auto back = plan_from_token("city+cc");
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->roles, plan.roles);
  EXPECT_FALSE(plan_from_token("city+bogus").has_value());
  EXPECT_FALSE(plan_from_token("").has_value());
}

TEST(NcIo, RoundTrip) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  const auto original = sample(dict);
  std::ostringstream out;
  save_conventions(out, original, dict);

  std::istringstream in(out.str());
  std::string error;
  const auto loaded = load_conventions(in, dict, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  ASSERT_EQ(loaded->size(), 2u);
  EXPECT_EQ((*loaded)[0].nc.suffix, "he.net");
  EXPECT_EQ((*loaded)[0].cls, NcClass::kGood);
  ASSERT_EQ((*loaded)[0].nc.regexes.size(), 1u);
  EXPECT_EQ((*loaded)[0].nc.regexes[0].regex.to_string(),
            original[0].nc.regexes[0].regex.to_string());
  ASSERT_EQ((*loaded)[0].nc.learned.size(), 1u);
  EXPECT_EQ((*loaded)[0].nc.learned.begin()->second,
            original[0].nc.learned.begin()->second);
  EXPECT_EQ((*loaded)[1].nc.regexes[0].plan.roles,
            (std::vector<Role>{Role::kClli4, Role::kClli2, Role::kCountryCode}));
}

TEST(NcIo, LoadedConventionsGeolocate) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  std::ostringstream out;
  save_conventions(out, sample(dict), dict);
  std::istringstream in(out.str());
  const auto loaded = load_conventions(in, dict);
  ASSERT_TRUE(loaded.has_value());

  Geolocator g(dict);
  for (const StoredConvention& sc : *loaded)
    if (sc.cls != NcClass::kPoor) g.add(sc.nc);
  const auto loc = g.locate("100ge1.core1.ash2.he.net");
  ASSERT_TRUE(loc.has_value());
  EXPECT_EQ(dict.location(loc->location).city, "Ashburn");
  EXPECT_TRUE(loc->via_learned);
}

TEST(NcIo, UnknownPlaceDropsLearnedWithWarning) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  std::istringstream in(
      "S,x.net,good\nR,iata,^([a-z]{3})\\.x\\.net$\nL,iata,zzq,Atlantis,,xx\n");
  std::vector<std::string> warnings;
  const auto loaded = load_conventions(in, dict, nullptr, &warnings);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_TRUE((*loaded)[0].nc.learned.empty());
  ASSERT_EQ(warnings.size(), 1u);
  EXPECT_NE(warnings[0].find("Atlantis"), std::string::npos);
}

TEST(NcIo, RejectsMalformedRecords) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  std::string error;

  std::istringstream no_s("R,iata,^([a-z]{3})\\.x\\.net$\n");
  EXPECT_FALSE(load_conventions(no_s, dict, &error).has_value());
  EXPECT_NE(error.find("before any S"), std::string::npos);

  std::istringstream bad_class("S,x.net,excellent\n");
  EXPECT_FALSE(load_conventions(bad_class, dict, &error).has_value());

  std::istringstream bad_regex("S,x.net,good\nR,iata,([a-z]{3}\n");
  EXPECT_FALSE(load_conventions(bad_regex, dict, &error).has_value());

  std::istringstream bad_type("S,x.net,good\nZ,zzz\n");
  EXPECT_FALSE(load_conventions(bad_type, dict, &error).has_value());
}

TEST(NcIo, RejectsPlanCaptureMismatch) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  std::string error;
  std::istringstream in("S,x.net,good\nR,iata+cc,^([a-z]{3})\\.x\\.net$\n");
  EXPECT_FALSE(load_conventions(in, dict, &error).has_value());
  EXPECT_NE(error.find("captures"), std::string::npos);
}

TEST(NcIo, EmptyInputYieldsEmptyList) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  std::istringstream in("# just a comment\n");
  const auto loaded = load_conventions(in, dict);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_TRUE(loaded->empty());
}

}  // namespace
}  // namespace hoiho::core
