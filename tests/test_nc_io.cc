// Unit tests for naming-convention serialization (core/nc_io.h) — the
// "published regex website" artifact.
#include "core/nc_io.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <fstream>
#include <sstream>

#include "core/geolocate.h"
#include "core/hoiho.h"
#include "io/load_report.h"
#include "regex/parser.h"
#include "sim/probing.h"
#include "util/failpoint.h"
#include "util/rng.h"

namespace hoiho::core {
namespace {

geo::LocationId find_city(const geo::GeoDictionary& dict, std::string_view city,
                          std::string_view country, std::string_view state = "") {
  for (geo::LocationId id : dict.lookup(geo::HintType::kCityName,
                                        geo::squash_place_name(city))) {
    if (!geo::same_country(dict.location(id).country, country)) continue;
    if (!state.empty() && dict.location(id).state != state) continue;
    return id;
  }
  return geo::kInvalidLocation;
}

std::vector<StoredConvention> sample(const geo::GeoDictionary& dict) {
  std::vector<StoredConvention> out(2);
  out[0].nc.suffix = "he.net";
  out[0].cls = NcClass::kGood;
  GeoRegex a;
  a.regex = *rx::parse("^.+\\.([a-z]{3})\\d+\\.he\\.net$");
  a.plan.roles = {Role::kIata};
  out[0].nc.regexes.push_back(std::move(a));
  out[0].nc.learned[{geo::HintType::kIata, "ash"}] = find_city(dict, "Ashburn", "us", "va");

  out[1].nc.suffix = "windstream.net";
  out[1].cls = NcClass::kPromising;
  GeoRegex b;
  b.regex = *rx::parse("^.+\\.([a-z]{4})\\d+-([a-z]{2})\\.([a-z]{2})\\.windstream\\.net$");
  b.plan.roles = {Role::kClli4, Role::kClli2, Role::kCountryCode};
  out[1].nc.regexes.push_back(std::move(b));
  return out;
}

TEST(NcIo, PlanTokens) {
  Plan plan;
  plan.roles = {Role::kCityName, Role::kCountryCode};
  EXPECT_EQ(plan_to_token(plan), "city+cc");
  const auto back = plan_from_token("city+cc");
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->roles, plan.roles);
  EXPECT_FALSE(plan_from_token("city+bogus").has_value());
  EXPECT_FALSE(plan_from_token("").has_value());
}

TEST(NcIo, RoundTrip) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  const auto original = sample(dict);
  std::ostringstream out;
  save_conventions(out, original, dict);

  std::istringstream in(out.str());
  std::string error;
  const auto loaded = load_conventions(in, dict, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  ASSERT_EQ(loaded->size(), 2u);
  EXPECT_EQ((*loaded)[0].nc.suffix, "he.net");
  EXPECT_EQ((*loaded)[0].cls, NcClass::kGood);
  ASSERT_EQ((*loaded)[0].nc.regexes.size(), 1u);
  EXPECT_EQ((*loaded)[0].nc.regexes[0].regex.to_string(),
            original[0].nc.regexes[0].regex.to_string());
  ASSERT_EQ((*loaded)[0].nc.learned.size(), 1u);
  EXPECT_EQ((*loaded)[0].nc.learned.begin()->second,
            original[0].nc.learned.begin()->second);
  EXPECT_EQ((*loaded)[1].nc.regexes[0].plan.roles,
            (std::vector<Role>{Role::kClli4, Role::kClli2, Role::kCountryCode}));
}

TEST(NcIo, LoadedConventionsGeolocate) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  std::ostringstream out;
  save_conventions(out, sample(dict), dict);
  std::istringstream in(out.str());
  const auto loaded = load_conventions(in, dict);
  ASSERT_TRUE(loaded.has_value());

  Geolocator g(dict);
  for (const StoredConvention& sc : *loaded)
    if (sc.cls != NcClass::kPoor) g.add(sc.nc);
  const auto loc = g.locate("100ge1.core1.ash2.he.net");
  ASSERT_TRUE(loc.has_value());
  EXPECT_EQ(dict.location(loc->location).city, "Ashburn");
  EXPECT_TRUE(loc->via_learned);
}

TEST(NcIo, UnknownPlaceDropsLearnedWithWarning) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  std::istringstream in(
      "S,x.net,good\nR,iata,^([a-z]{3})\\.x\\.net$\nL,iata,zzq,Atlantis,,xx\n");
  std::vector<std::string> warnings;
  const auto loaded = load_conventions(in, dict, nullptr, &warnings);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_TRUE((*loaded)[0].nc.learned.empty());
  ASSERT_EQ(warnings.size(), 1u);
  EXPECT_NE(warnings[0].find("Atlantis"), std::string::npos);
}

TEST(NcIo, RejectsMalformedRecords) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  std::string error;

  std::istringstream no_s("R,iata,^([a-z]{3})\\.x\\.net$\n");
  EXPECT_FALSE(load_conventions(no_s, dict, &error).has_value());
  EXPECT_NE(error.find("before any S"), std::string::npos);

  std::istringstream bad_class("S,x.net,excellent\n");
  EXPECT_FALSE(load_conventions(bad_class, dict, &error).has_value());

  std::istringstream bad_regex("S,x.net,good\nR,iata,([a-z]{3}\n");
  EXPECT_FALSE(load_conventions(bad_regex, dict, &error).has_value());

  std::istringstream bad_type("S,x.net,good\nZ,zzz\n");
  EXPECT_FALSE(load_conventions(bad_type, dict, &error).has_value());
}

TEST(NcIo, RejectsPlanCaptureMismatch) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  std::string error;
  std::istringstream in("S,x.net,good\nR,iata+cc,^([a-z]{3})\\.x\\.net$\n");
  EXPECT_FALSE(load_conventions(in, dict, &error).has_value());
  EXPECT_NE(error.find("captures"), std::string::npos);
}

TEST(NcIo, EmptyInputYieldsEmptyList) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  std::istringstream in("# just a comment\n");
  const auto loaded = load_conventions(in, dict);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_TRUE(loaded->empty());
}

// --- hardened loader ---------------------------------------------------------

TEST(NcIo, RejectsWrongArity) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  std::string error;

  std::istringstream extra_s("S,x.net,good,surprise\n");
  EXPECT_FALSE(load_conventions(extra_s, dict, &error).has_value());
  EXPECT_NE(error.find("3 fields"), std::string::npos);

  std::istringstream short_r("S,x.net,good\nR,iata\n");
  EXPECT_FALSE(load_conventions(short_r, dict, &error).has_value());

  std::istringstream long_l("S,x.net,good\nR,iata,^([a-z]{3})\\.x\\.net$\n"
                            "L,iata,abc,City,,us,extra\n");
  EXPECT_FALSE(load_conventions(long_l, dict, &error).has_value());
  EXPECT_NE(error.find("6 fields"), std::string::npos);
}

TEST(NcIo, RejectsOversizedFields) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  std::string error;

  const std::string big_regex(5000, 'a');
  std::istringstream r("S,x.net,good\nR,iata,^" + big_regex + "$\n");
  EXPECT_FALSE(load_conventions(r, dict, &error).has_value());
  EXPECT_NE(error.find("regex exceeds"), std::string::npos);

  const std::string big_suffix(300, 'x');
  std::istringstream s("S," + big_suffix + ",good\n");
  EXPECT_FALSE(load_conventions(s, dict, &error).has_value());

  std::istringstream line_cap("# pad\nS,x.net,good\n");
  LoadLimits tight;
  tight.max_line = 4;
  EXPECT_FALSE(load_conventions(line_cap, dict, &error, nullptr, tight).has_value());
  EXPECT_NE(error.find("exceeds 4 bytes"), std::string::npos);
}

TEST(NcIo, RejectsBadSuffixAndControlBytes) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  std::string error;

  std::istringstream bad_suffix("S,EXAMPLE .NET,good\n");
  EXPECT_FALSE(load_conventions(bad_suffix, dict, &error).has_value());
  EXPECT_NE(error.find("bad suffix"), std::string::npos);

  std::istringstream ctrl(std::string("S,x.net,good\nR,iata,^([a-z]{3})\\.x\\.net$\n"
                                      "L,iata,ab\x01..., City,,us\n"));
  EXPECT_FALSE(load_conventions(ctrl, dict, &error).has_value());
  EXPECT_NE(error.find("control bytes"), std::string::npos);
}

TEST(NcIo, WarnsOnDuplicateAndEmptyBlocks) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  std::vector<std::string> warnings;
  std::istringstream in(
      "S,x.net,good\nR,iata,^([a-z]{3})\\.x\\.net$\n"
      "S,empty.net,good\n"
      "S,x.net,promising\nR,iata,^([a-z]{3})-\\d+\\.x\\.net$\n");
  const auto loaded = load_conventions(in, dict, nullptr, &warnings);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->size(), 3u);
  bool saw_dup = false, saw_empty = false;
  for (const std::string& w : warnings) {
    if (w.find("duplicate suffix 'x.net'") != std::string::npos) saw_dup = true;
    if (w.find("no regexes") != std::string::npos) saw_empty = true;
  }
  EXPECT_TRUE(saw_dup);
  EXPECT_TRUE(saw_empty);
}

// Fuzz-style robustness: random byte mutations of a valid file must never
// crash or hang the loader — every input either parses or produces a
// non-empty error message. (The loader feeds the daemon's hot reload, so
// it sees whatever lands on disk.)
TEST(NcIo, FuzzedMutationsNeverCrash) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  std::ostringstream out;
  save_conventions(out, sample(dict), dict);
  const std::string valid = out.str();

  util::Rng rng(20260805);
  std::size_t parsed = 0, rejected = 0;
  for (int iter = 0; iter < 2000; ++iter) {
    std::string mutated = valid;
    const std::size_t flips = 1 + rng.next_below(8);
    for (std::size_t i = 0; i < flips; ++i) {
      const std::size_t pos = rng.next_below(mutated.size());
      mutated[pos] = static_cast<char>(rng.next_below(256));
    }
    std::istringstream in(mutated);
    std::string error;
    const auto loaded = load_conventions(in, dict, &error);
    if (loaded) {
      ++parsed;
    } else {
      ++rejected;
      EXPECT_FALSE(error.empty());
    }
  }
  // Both outcomes occur across 2000 mutations; neither dominates to 100%.
  EXPECT_GT(parsed, 0u);
  EXPECT_GT(rejected, 0u);
}

TEST(NcIo, TruncatedPrefixesLoadOrFailCleanly) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  std::ostringstream out;
  save_conventions(out, sample(dict), dict);
  const std::string valid = out.str();
  for (std::size_t len = 0; len <= valid.size(); ++len) {
    std::istringstream in(valid.substr(0, len));
    std::string error;
    const auto loaded = load_conventions(in, dict, &error);
    if (!loaded) {
      EXPECT_FALSE(error.empty()) << "prefix length " << len;
    }
  }
}

// --- save/load/save byte-identity over simulator output ----------------------

// Every convention class the pipeline produces (good / promising / poor,
// with and without learned hints) must round-trip: save -> load -> save is
// byte-identical. This is the contract that lets the daemon re-serve a
// model file it (or anyone) re-saved.
TEST(NcIo, SimulatorOutputRoundTripsByteIdentical) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  sim::WorldConfig config;
  config.seed = 20260805;
  config.operators = 24;
  config.geohint_scheme_rate = 0.8;
  const sim::World world = sim::generate_world(dict, config);
  const measure::Measurements pings = sim::probe_pings(world, {});
  const core::Hoiho hoiho(dict);
  const core::HoihoResult result = hoiho.run(world.topology, pings);

  std::vector<StoredConvention> stored;
  std::size_t classes_seen[3] = {0, 0, 0};
  for (const core::SuffixResult& sr : result.suffixes) {
    if (!sr.has_nc()) continue;
    stored.push_back(StoredConvention{sr.nc, sr.cls});
    ++classes_seen[static_cast<int>(sr.cls)];
  }
  ASSERT_FALSE(stored.empty());
  EXPECT_GT(classes_seen[static_cast<int>(NcClass::kGood)], 0u);

  std::ostringstream first;
  save_conventions(first, stored, dict);
  std::istringstream in(first.str());
  std::string error;
  std::vector<std::string> warnings;
  const auto loaded = load_conventions(in, dict, &error, &warnings);
  ASSERT_TRUE(loaded.has_value()) << error;
  ASSERT_EQ(loaded->size(), stored.size());
  for (const std::string& w : warnings)
    EXPECT_EQ(w.find("dropped"), std::string::npos) << w;

  std::ostringstream second;
  save_conventions(second, *loaded, dict);
  EXPECT_EQ(first.str(), second.str());
}

// --- atomic, checksummed persistence -----------------------------------------

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(NcIo, SaveToFileIsChecksummedAndLoadable) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  const std::string path = ::testing::TempDir() + "/nc_save_atomic.txt";
  std::string error;
  ASSERT_TRUE(save_conventions_to_file(path, sample(dict), dict, &error)) << error;

  const std::string content = slurp(path);
  EXPECT_NE(content.find("# checksum,fnv1a,"), std::string::npos);
  // No stray tmp file left behind.
  std::ifstream tmp(path + ".tmp." + std::to_string(::getpid()));
  EXPECT_FALSE(tmp.good());

  std::ifstream in(path);
  const auto loaded = load_conventions(in, dict, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->size(), 2u);
}

TEST(NcIo, CorruptedByteFailsChecksum) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  const std::string path = ::testing::TempDir() + "/nc_save_corrupt.txt";
  std::string error;
  ASSERT_TRUE(save_conventions_to_file(path, sample(dict), dict, &error)) << error;
  std::string content = slurp(path);

  // Flip a byte in a comment line: the file still parses record-by-record,
  // so only the checksum can catch the damage.
  const std::size_t hash_pos = content.find("# checksum");
  ASSERT_NE(hash_pos, std::string::npos);
  std::size_t flip = std::string::npos;
  for (std::size_t i = 0; i + 1 < hash_pos; ++i) {
    if (content[i] == '#' && (i == 0 || content[i - 1] == '\n')) {
      flip = i + 1;
      break;
    }
  }
  ASSERT_NE(flip, std::string::npos) << "no comment line to corrupt";
  content[flip] = content[flip] == '!' ? '?' : '!';

  std::istringstream in(content);
  EXPECT_FALSE(load_conventions(in, dict, &error).has_value());
  EXPECT_NE(error.find("checksum mismatch"), std::string::npos) << error;
}

TEST(NcIo, ContentAfterFooterRejected) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  const std::string path = ::testing::TempDir() + "/nc_save_trailer.txt";
  std::string error;
  ASSERT_TRUE(save_conventions_to_file(path, sample(dict), dict, &error)) << error;
  std::string content = slurp(path);
  content += "S,sneaky.net,good\n";

  std::istringstream in(content);
  EXPECT_FALSE(load_conventions(in, dict, &error).has_value());
  EXPECT_NE(error.find("after checksum footer"), std::string::npos) << error;
}

TEST(NcIo, TrailingGarbageIsCountedInTheLoadReport) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  const std::string path = ::testing::TempDir() + "/nc_save_trailer_report.txt";
  std::string error;
  ASSERT_TRUE(save_conventions_to_file(path, sample(dict), dict, &error)) << error;
  std::string content = slurp(path);
  // Everything after the footer is unverified — even a blank line counts;
  // the load aborts at the first trailing line (a named error, so nothing
  // downstream ever consumes unverified bytes) and the report records it.
  content += "\nS,sneaky.net,good\n";

  std::istringstream in(content);
  io::LoadReport report;
  EXPECT_FALSE(load_conventions(in, dict, &error, nullptr, {}, &report).has_value());
  EXPECT_NE(error.find("after checksum footer"), std::string::npos) << error;
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.skipped_count("trailing_garbage"), 1u);
}

TEST(NcIo, FooterlessFilesStillLoad) {
  // Files written by the plain stream writer (or by hand) carry no footer;
  // they must keep loading for backward compatibility.
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  std::ostringstream out;
  save_conventions(out, sample(dict), dict);
  std::istringstream in(out.str());
  std::string error;
  const auto loaded = load_conventions(in, dict, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->size(), 2u);
}

TEST(NcIo, SaveFailpointSurfacesInjectedError) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  const std::string path = ::testing::TempDir() + "/nc_save_failpoint.txt";
  ASSERT_TRUE(util::failpoint::configure("nc.save", "error:ENOMEM"));
  std::string error;
  const bool ok = save_conventions_to_file(path, sample(dict), dict, &error);
  util::failpoint::reset();
  EXPECT_FALSE(ok);
  EXPECT_NE(error.find("injected"), std::string::npos) << error;
  // Disarmed, the same save succeeds.
  EXPECT_TRUE(save_conventions_to_file(path, sample(dict), dict, &error)) << error;
}

}  // namespace
}  // namespace hoiho::core
