// Unit tests for geo/coord.h — geodesy and the speed-of-light RTT bound.
#include "geo/coord.h"

#include <gtest/gtest.h>

namespace hoiho::geo {
namespace {

constexpr Coordinate kNewYork{40.71, -74.01};
constexpr Coordinate kLondon{51.51, -0.13};
constexpr Coordinate kSydney{-33.87, 151.21};
constexpr Coordinate kTokyo{35.68, 139.69};

TEST(Coordinate, Validity) {
  EXPECT_TRUE(kNewYork.valid());
  EXPECT_FALSE(Coordinate::invalid().valid());
  EXPECT_FALSE((Coordinate{91.0, 0.0}).valid());
  EXPECT_TRUE((Coordinate{-90.0, 180.0}).valid());
}

TEST(Distance, ZeroForSamePoint) {
  EXPECT_NEAR(distance_km(kLondon, kLondon), 0.0, 1e-9);
}

TEST(Distance, KnownCityPairs) {
  // Reference values from standard great-circle calculators (+-1%).
  EXPECT_NEAR(distance_km(kNewYork, kLondon), 5570, 60);
  EXPECT_NEAR(distance_km(kLondon, kSydney), 16994, 170);
  EXPECT_NEAR(distance_km(kNewYork, kTokyo), 10850, 120);
}

TEST(Distance, Symmetric) {
  EXPECT_DOUBLE_EQ(distance_km(kNewYork, kLondon), distance_km(kLondon, kNewYork));
}

TEST(Distance, InvalidCoordinateUnconstrained) {
  EXPECT_GE(distance_km(Coordinate::invalid(), kLondon), 1e8);
}

TEST(MinRtt, HundredKmPerMs) {
  // ~200 km per one-way ms in fiber => ~100 km per RTT ms (paper fig. 5:
  // 16 ms ~ 1600 km).
  EXPECT_NEAR(min_rtt_ms(1600.0), 16.0, 0.2);
  EXPECT_NEAR(min_rtt_ms(100.0), 1.0, 0.02);
  EXPECT_DOUBLE_EQ(min_rtt_ms(0.0), 0.0);
}

TEST(MinRtt, CoordinateOverloadMatches) {
  EXPECT_DOUBLE_EQ(min_rtt_ms(kNewYork, kLondon), min_rtt_ms(distance_km(kNewYork, kLondon)));
}

TEST(MaxDistance, InverseOfMinRtt) {
  for (double rtt : {1.0, 7.0, 16.0, 68.0}) {
    EXPECT_NEAR(min_rtt_ms(max_distance_km(rtt)), rtt, 1e-9);
  }
}

TEST(MinRtt, TransatlanticSanity) {
  // NY <-> London best case is just under 56 ms RTT: real measurements of
  // ~70 ms are consistent, claims of 40 ms are not.
  const double bound = min_rtt_ms(kNewYork, kLondon);
  EXPECT_GT(bound, 50.0);
  EXPECT_LT(bound, 60.0);
}

TEST(FiberSpeed, TwoThirdsOfC) {
  EXPECT_NEAR(kFiberSpeedKmPerMs, 199.86, 0.05);
}

}  // namespace
}  // namespace hoiho::geo
