// End-to-end tests for the serving subsystem: protocol grammar, the
// hot-reloadable ModelStore, and a live epoll Server driven through the
// blocking Client over loopback.
#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <thread>

#include "core/delta.h"
#include "core/nc_io.h"
#include "regex/parser.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "util/failpoint.h"
#include "util/net.h"
#include "util/strings.h"

namespace hoiho::serve {
namespace {

geo::LocationId find_city(const geo::GeoDictionary& dict, std::string_view city,
                          std::string_view country, std::string_view state = "") {
  for (geo::LocationId id :
       dict.lookup(geo::HintType::kCityName, geo::squash_place_name(city))) {
    if (!geo::same_country(dict.location(id).country, country)) continue;
    if (!state.empty() && dict.location(id).state != state) continue;
    return id;
  }
  return geo::kInvalidLocation;
}

// The he.net-style convention from test_nc_io: IATA extraction plus the
// learned "ash" -> Ashburn VA deviation.
std::vector<core::StoredConvention> he_net_model(const geo::GeoDictionary& dict) {
  std::vector<core::StoredConvention> out(1);
  out[0].nc.suffix = "he.net";
  out[0].cls = core::NcClass::kGood;
  core::GeoRegex gr;
  gr.regex = *rx::parse("^.+\\.([a-z]{3})\\d+\\.he\\.net$");
  gr.plan.roles = {core::Role::kIata};
  out[0].nc.regexes.push_back(std::move(gr));
  out[0].nc.learned[{geo::HintType::kIata, "ash"}] = find_city(dict, "Ashburn", "us", "va");
  return out;
}

std::vector<core::StoredConvention> zayo_model(const geo::GeoDictionary& dict) {
  (void)dict;
  std::vector<core::StoredConvention> out(1);
  out[0].nc.suffix = "zayo.com";
  out[0].cls = core::NcClass::kGood;
  core::GeoRegex gr;
  gr.regex = *rx::parse("^([a-z]{3})\\d+\\.zayo\\.com$");
  gr.plan.roles = {core::Role::kIata};
  out[0].nc.regexes.push_back(std::move(gr));
  return out;
}

void write_model(const std::string& path, const std::vector<core::StoredConvention>& m,
                 const geo::GeoDictionary& dict) {
  std::ofstream out(path);
  core::save_conventions(out, m, dict);
}

std::string temp_path(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

// A Server on an ephemeral loopback port, running in its own thread.
class LiveServer {
 public:
  explicit LiveServer(ModelStore& store, ServerConfig config = {}) : server_(store, config) {
    std::string error;
    started_ = server_.start(&error);
    EXPECT_TRUE(started_) << error;
    if (started_) thread_ = std::thread([this] { server_.run(); });
  }
  ~LiveServer() {
    if (started_) {
      server_.stop();
      thread_.join();
    }
  }
  Server& operator*() { return server_; }
  Server* operator->() { return &server_; }

 private:
  Server server_;
  bool started_ = false;
  std::thread thread_;
};

// --- protocol ----------------------------------------------------------------

TEST(Protocol, ParseRequestKinds) {
  EXPECT_EQ(parse_request("foo.he.net").kind, RequestKind::kLookup);
  EXPECT_EQ(parse_request("foo.he.net").hostname, "foo.he.net");
  EXPECT_EQ(parse_request("STATS").kind, RequestKind::kStats);
  EXPECT_EQ(parse_request("RELOAD").kind, RequestKind::kReload);
  EXPECT_EQ(parse_request("").kind, RequestKind::kEmpty);
  EXPECT_EQ(parse_request("\r").kind, RequestKind::kEmpty);
  EXPECT_EQ(parse_request("STATS\r").kind, RequestKind::kStats);
  // Verbs are case-sensitive; anything else is a hostname lookup.
  EXPECT_EQ(parse_request("stats").kind, RequestKind::kLookup);
}

TEST(Protocol, FormatAndClassify) {
  core::Geolocation g;
  g.coord = {38.96, -77.35};
  g.code = "ash";
  g.via_learned = true;
  EXPECT_EQ(format_hit(g), "38.9600,-77.3500,ash,learned");
  EXPECT_EQ(classify_response(format_hit(g)), ResponseKind::kHit);
  EXPECT_EQ(classify_response(format_miss()), ResponseKind::kMiss);
  EXPECT_EQ(classify_response(format_error("x")), ResponseKind::kError);
  EXPECT_EQ(classify_response(format_reload_ok(2, 5)), ResponseKind::kReload);
  EXPECT_EQ(classify_response(format_reload_error("nope")), ResponseKind::kReloadError);
  Metrics m;
  EXPECT_EQ(classify_response(format_stats(m.snapshot(), 1, 3)), ResponseKind::kStats);
}

TEST(Protocol, ParseGeoRequests) {
  const Request plain = parse_request("GEO e0.cr1.ash1.he.net");
  EXPECT_EQ(plain.kind, RequestKind::kGeo);
  EXPECT_EQ(plain.subject, "e0.cr1.ash1.he.net");
  EXPECT_FALSE(plain.has_claimed);
  EXPECT_TRUE(plain.error.empty());

  const Request claimed = parse_request("GEO 192.0.2.9 38.96,-77.35");
  EXPECT_EQ(claimed.kind, RequestKind::kGeo);
  EXPECT_EQ(claimed.subject, "192.0.2.9");
  ASSERT_TRUE(claimed.has_claimed);
  EXPECT_DOUBLE_EQ(claimed.claimed.lat, 38.96);
  EXPECT_DOUBLE_EQ(claimed.claimed.lon, -77.35);

  // Malformed arguments are named errors, not lookups.
  EXPECT_EQ(parse_request("GEO").error, "geo_usage");
  EXPECT_EQ(parse_request("GEO   ").error, "geo_usage");
  EXPECT_EQ(parse_request("GEO host nope").error, "bad_coordinate");
  EXPECT_EQ(parse_request("GEO host 38.96").error, "bad_coordinate");
  EXPECT_EQ(parse_request("GEO host 91.0,2.0").error, "bad_coordinate");
  EXPECT_EQ(parse_request("GEO host 91.0,2.0").kind, RequestKind::kGeo);
}

TEST(Protocol, UnknownVerbsAreNamedErrorsNotLookups) {
  // Any spaced line whose head is not a known verb, and any spaceless
  // verb-shaped token, answers ERR,unknown_verb instead of a MISS.
  EXPECT_EQ(parse_request("FROBNICATE foo.he.net").kind, RequestKind::kUnknownVerb);
  EXPECT_EQ(parse_request("FLUSH").kind, RequestKind::kUnknownVerb);
  EXPECT_EQ(parse_request("STATS3").kind, RequestKind::kUnknownVerb);
  // Dotted names stay lookups no matter their case; lowercase words too.
  EXPECT_EQ(parse_request("FLUSH.example.net").kind, RequestKind::kLookup);
  EXPECT_EQ(parse_request("flush").kind, RequestKind::kLookup);
}

TEST(Protocol, FormatGeoAndClassify) {
  fuse::FuseResult result;
  EXPECT_EQ(format_geo(result), "GEO,miss");
  EXPECT_EQ(classify_response("GEO,miss"), ResponseKind::kGeo);

  fuse::Verdict v;
  v.coord = {38.96, -77.35};
  v.source = fuse::Source::kDictionary;
  v.score = 0.75;
  result.verdicts.push_back(v);
  result.set.code = "ash";
  fuse::Candidate c;
  c.feasible = true;
  result.set.candidates.push_back(c);
  c.feasible = false;
  result.set.candidates.push_back(c);
  EXPECT_EQ(format_geo(result),
            "GEO,38.9600,-77.3500,ash,dictionary,0.750,candidates=2,feasible=1");
  EXPECT_EQ(format_geo(result, fuse::AuditOutcome::kRefute),
            "GEO,38.9600,-77.3500,ash,dictionary,0.750,candidates=2,feasible=1,"
            "audit=refute");
  EXPECT_EQ(classify_response(format_geo(result)), ResponseKind::kGeo);
  EXPECT_EQ(classify_response(format_error("unknown_verb")), ResponseKind::kError);
}

TEST(Protocol, ParseAndFormatGensRollback) {
  EXPECT_EQ(parse_request("GENS").kind, RequestKind::kGens);
  EXPECT_EQ(parse_request("GENS\r").kind, RequestKind::kGens);

  const Request rb = parse_request("ROLLBACK 7");
  EXPECT_EQ(rb.kind, RequestKind::kRollback);
  EXPECT_TRUE(rb.error.empty());
  EXPECT_EQ(rb.rollback_gen, 7u);
  EXPECT_EQ(parse_request("ROLLBACK  12 ").rollback_gen, 12u);

  // Missing/non-numeric generations are named usage errors, not lookups.
  EXPECT_EQ(parse_request("ROLLBACK").error, "rollback_usage");
  EXPECT_EQ(parse_request("ROLLBACK ").error, "rollback_usage");
  EXPECT_EQ(parse_request("ROLLBACK seven").error, "rollback_usage");
  EXPECT_EQ(parse_request("ROLLBACK -1").error, "rollback_usage");

  EXPECT_EQ(format_gens(3, {}), "GENS,serving=3,archived=-");
  EXPECT_EQ(format_gens(3, {1, 2, 3}), "GENS,serving=3,archived=1;2;3");
  EXPECT_EQ(format_rollback_ok(4, 2, 9), "ROLLBACK,ok,generation=4,from=2,conventions=9");
  EXPECT_EQ(format_rollback_error("nope"), "ROLLBACK,error,nope");
  EXPECT_EQ(classify_response(format_gens(3, {1})), ResponseKind::kGens);
  EXPECT_EQ(classify_response(format_rollback_ok(4, 2, 9)), ResponseKind::kRollback);
  EXPECT_EQ(classify_response(format_rollback_error("x")), ResponseKind::kRollbackError);
}

// --- ModelStore --------------------------------------------------------------

TEST(ModelStore, InstallPublishesNewGeneration) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  ModelStore store(dict);
  EXPECT_EQ(store.current()->generation, 0u);  // empty initial snapshot
  store.install(he_net_model(dict));
  const auto snap = store.current();
  EXPECT_EQ(snap->generation, 1u);
  EXPECT_EQ(snap->convention_count, 1u);
  EXPECT_TRUE(snap->geolocator.locate("e0.cr1.ash1.he.net").has_value());
}

TEST(ModelStore, ReloadFromFileAndKeepOldOnFailure) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  const std::string path = temp_path("store_model.txt");
  write_model(path, he_net_model(dict), dict);
  ModelStore store(dict, path);
  EXPECT_FALSE(store.reload().has_value());
  const auto good = store.current();
  EXPECT_EQ(good->convention_count, 1u);

  {
    std::ofstream out(path);
    out << "Z,bogus\n";  // unknown record type
  }
  const auto err = store.reload();
  EXPECT_TRUE(err.has_value());
  // Old snapshot still serves.
  EXPECT_EQ(store.current().get(), good.get());
  EXPECT_TRUE(store.current()->geolocator.locate("e0.cr1.ash1.he.net").has_value());
}

TEST(ModelStore, SnapshotOutlivesSwap) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  ModelStore store(dict);
  store.install(he_net_model(dict));
  const auto pinned = store.current();
  store.install(zayo_model(dict));
  // The pinned snapshot still answers with the old model.
  EXPECT_TRUE(pinned->geolocator.locate("e0.cr1.ash1.he.net").has_value());
  // The current one answers with the new model only.
  EXPECT_FALSE(store.current()->geolocator.locate("e0.cr1.ash1.he.net").has_value());
  EXPECT_TRUE(store.current()->geolocator.locate("lhr1.zayo.com").has_value());
}

// --- lineage, canary & rollback (DESIGN.md §14) ------------------------------

// Removes a model path's generation archive so reruns start clean.
void wipe_gens(const std::string& model_path) {
  const std::string dir = model_path + ".gens";
  for (std::uint64_t g = 0; g < 64; ++g)
    std::remove((dir + "/gen-" + std::to_string(g) + ".nc").c_str());
  ::rmdir(dir.c_str());
}

TEST(ModelStore, ArchivesGenerationsAndPrunesPastKeep) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  const std::string path = temp_path("lineage_model.txt");
  wipe_gens(path);
  write_model(path, he_net_model(dict), dict);
  ModelStore store(dict, path);
  store.set_keep_generations(2);

  ASSERT_FALSE(store.reload().has_value());  // gen 1
  write_model(path, zayo_model(dict), dict);
  ASSERT_FALSE(store.reload().has_value());  // gen 2
  write_model(path, he_net_model(dict), dict);
  ASSERT_FALSE(store.reload().has_value());  // gen 3; gen 1 pruned
  EXPECT_EQ(store.generation(), 3u);
  EXPECT_EQ(store.list_generations(), (std::vector<std::uint64_t>{2, 3}));
}

TEST(ModelStore, GenerationNumbersSurviveRestart) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  const std::string path = temp_path("restart_model.txt");
  wipe_gens(path);
  write_model(path, he_net_model(dict), dict);
  {
    ModelStore store(dict, path);
    store.set_keep_generations(4);
    ASSERT_FALSE(store.reload().has_value());  // gen 1
    ASSERT_FALSE(store.reload().has_value());  // gen 2
  }
  // A fresh store rescans the archive: new generations continue past the
  // archived maximum instead of reusing (and clobbering) old numbers.
  ModelStore store(dict, path);
  store.set_keep_generations(4);
  ASSERT_FALSE(store.reload().has_value());
  EXPECT_EQ(store.generation(), 3u);
  EXPECT_EQ(store.list_generations(), (std::vector<std::uint64_t>{1, 2, 3}));
}

TEST(ModelStore, RollbackRepublishesAnArchivedGeneration) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  const std::string path = temp_path("rollback_model.txt");
  wipe_gens(path);
  write_model(path, he_net_model(dict), dict);
  ModelStore store(dict, path);
  store.set_keep_generations(4);
  ASSERT_FALSE(store.reload().has_value());  // gen 1: he.net
  write_model(path, zayo_model(dict), dict);
  ASSERT_FALSE(store.reload().has_value());  // gen 2: zayo
  ASSERT_FALSE(store.current()->geolocator.locate("e0.cr1.ash1.he.net").has_value());

  std::uint64_t published = 0;
  EXPECT_FALSE(store.rollback(1, &published).has_value());
  // Lineage is append-only: the old model comes back under a NEW number, so
  // GENS history never lies about what served when.
  EXPECT_EQ(published, 3u);
  EXPECT_EQ(store.generation(), 3u);
  EXPECT_TRUE(store.current()->geolocator.locate("e0.cr1.ash1.he.net").has_value());
  EXPECT_EQ(store.list_generations(), (std::vector<std::uint64_t>{1, 2, 3}));

  // Unknown generation: a named error, nothing published.
  const auto err = store.rollback(42);
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("not in the archive"), std::string::npos) << *err;
  EXPECT_EQ(store.generation(), 3u);
}

TEST(ModelStore, RollbackRequiresAnArchive) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  const std::string path = temp_path("noarchive_model.txt");
  wipe_gens(path);
  write_model(path, he_net_model(dict), dict);
  ModelStore store(dict, path);
  ASSERT_FALSE(store.reload().has_value());
  const auto err = store.rollback(1);
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("keep-generations"), std::string::npos) << *err;
}

TEST(ModelStore, CanaryGateRejectsDivergingReload) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  const std::string path = temp_path("canary_model.txt");
  const std::string canary = temp_path("canary_queries.txt");
  wipe_gens(path);
  {
    core::Geolocator check(dict);
    for (const core::StoredConvention& sc : he_net_model(dict)) check.add(sc.nc);
    const auto lhr = check.locate("e0.cr1.lhr1.he.net");
    ASSERT_TRUE(lhr.has_value());
    std::ofstream out(canary);
    out << "# pinned queries: the ash deviation must keep answering\n";
    out << "e0.cr1.ash1.he.net\n";                             // any non-MISS
    out << "e0.cr1.lhr1.he.net," << format_hit(*lhr) << "\n";  // exact answer
  }
  write_model(path, he_net_model(dict), dict);
  ModelStore store(dict, path);
  store.set_canary(canary);
  ASSERT_FALSE(store.reload().has_value());  // he.net passes its own canary

  // A model that breaks the pinned queries must not publish.
  write_model(path, zayo_model(dict), dict);
  const auto err = store.reload();
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("canary rejected"), std::string::npos) << *err;
  EXPECT_EQ(store.generation(), 1u);
  EXPECT_TRUE(store.current()->geolocator.locate("e0.cr1.ash1.he.net").has_value());

  // Restoring a passing model publishes again.
  write_model(path, he_net_model(dict), dict);
  EXPECT_FALSE(store.reload().has_value());
  EXPECT_EQ(store.generation(), 2u);
}

TEST(ModelStore, CanaryFailsClosed) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  const std::string path = temp_path("canary_closed_model.txt");
  wipe_gens(path);
  write_model(path, he_net_model(dict), dict);
  ModelStore store(dict, path);
  // Unreadable canary: every reload is rejected rather than unguarded.
  store.set_canary(temp_path("no_such_canary.txt"));
  const auto err = store.reload();
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("failing closed"), std::string::npos) << *err;
  EXPECT_EQ(store.generation(), 0u);
}

TEST(ModelStore, RollbackBypassesTheCanary) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  const std::string path = temp_path("canary_rollback_model.txt");
  const std::string canary = temp_path("canary_rollback_queries.txt");
  wipe_gens(path);
  { std::ofstream out(canary); out << "lhr1.zayo.com\n"; }
  write_model(path, zayo_model(dict), dict);
  ModelStore store(dict, path);
  store.set_keep_generations(4);
  ASSERT_FALSE(store.reload().has_value());  // gen 1: zayo
  write_model(path, he_net_model(dict), dict);
  ASSERT_FALSE(store.reload().has_value());  // gen 2: he.net
  store.set_canary(canary);
  // he.net fails the zayo canary, but ROLLBACK is the operator's explicit
  // escape hatch — it must not be vetoed by the very gate being escaped.
  std::uint64_t published = 0;
  EXPECT_FALSE(store.rollback(2, &published).has_value());
  EXPECT_EQ(published, 3u);
  EXPECT_TRUE(store.current()->geolocator.locate("e0.cr1.ash1.he.net").has_value());
}

// --- Server ------------------------------------------------------------------

TEST(Server, LookupStatsAndMiss) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  ModelStore store(dict);
  store.install(he_net_model(dict));
  LiveServer server(store);

  auto client = Client::connect("127.0.0.1", server->port());
  ASSERT_TRUE(client.has_value());

  const auto hit = client->request("e0.cr1.ash1.he.net");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(classify_response(*hit), ResponseKind::kHit);
  EXPECT_NE(hit->find("ash,learned"), std::string::npos);

  const auto dict_hit = client->request("e0.cr1.lhr1.he.net");
  ASSERT_TRUE(dict_hit.has_value());
  EXPECT_NE(dict_hit->find("lhr,dictionary"), std::string::npos);

  const auto miss = client->request("unknown.example.org");
  ASSERT_TRUE(miss.has_value());
  EXPECT_EQ(*miss, "MISS");

  const auto empty = client->request("");
  ASSERT_TRUE(empty.has_value());
  EXPECT_EQ(classify_response(*empty), ResponseKind::kError);

  const auto stats = client->request("STATS");
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(classify_response(*stats), ResponseKind::kStats);
  EXPECT_NE(stats->find("requests=3"), std::string::npos);
  EXPECT_NE(stats->find("hits=2"), std::string::npos);
  EXPECT_NE(stats->find("misses=1"), std::string::npos);
  EXPECT_NE(stats->find("errors=1"), std::string::npos);
  EXPECT_NE(stats->find("conventions=1"), std::string::npos);
}

TEST(Server, PipelinedResponsesArriveInOrder) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  ModelStore store(dict);
  store.install(he_net_model(dict));
  ServerConfig config;
  config.max_batch = 8;  // force many batches per burst
  LiveServer server(store, config);

  auto client = Client::connect("127.0.0.1", server->port());
  ASSERT_TRUE(client.has_value());

  // Alternate two requests with distinguishable answers across a burst far
  // larger than one batch, so reordering across workers would be visible.
  std::vector<std::string> requests;
  for (int i = 0; i < 500; ++i)
    requests.push_back(i % 2 == 0 ? "e0.ash1.he.net" : "e0.lhr1.he.net");
  ASSERT_TRUE(client->send_lines(requests));
  for (int i = 0; i < 500; ++i) {
    const auto resp = client->read_line();
    ASSERT_TRUE(resp.has_value()) << "response " << i;
    const char* expected = i % 2 == 0 ? "ash,learned" : "lhr,dictionary";
    EXPECT_NE(resp->find(expected), std::string::npos)
        << "response " << i << " out of order: " << *resp;
  }
}

TEST(Server, ReloadSwapsModelWithoutDroppingConnections) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  const std::string path = temp_path("reload_model.txt");
  write_model(path, he_net_model(dict), dict);
  ModelStore store(dict, path);
  ASSERT_FALSE(store.reload().has_value());
  LiveServer server(store);

  auto client = Client::connect("127.0.0.1", server->port());
  ASSERT_TRUE(client.has_value());
  EXPECT_EQ(classify_response(*client->request("e0.ash1.he.net")), ResponseKind::kHit);

  // Swap the file for a different operator's model and RELOAD in-band.
  write_model(path, zayo_model(dict), dict);
  const auto reload = client->request("RELOAD");
  ASSERT_TRUE(reload.has_value());
  EXPECT_EQ(classify_response(*reload), ResponseKind::kReload) << *reload;

  // Same connection, new model: he.net now misses, zayo.com hits.
  EXPECT_EQ(*client->request("e0.ash1.he.net"), "MISS");
  EXPECT_EQ(classify_response(*client->request("lhr1.zayo.com")), ResponseKind::kHit);

  // A botched model keeps the old one serving.
  { std::ofstream out(path); out << "S,zayo.com\n"; }  // wrong arity
  const auto bad = client->request("RELOAD");
  ASSERT_TRUE(bad.has_value());
  EXPECT_EQ(classify_response(*bad), ResponseKind::kReloadError) << *bad;
  EXPECT_EQ(classify_response(*client->request("lhr1.zayo.com")), ResponseKind::kHit);
}

TEST(Server, OversizedLineIsRejected) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  ModelStore store(dict);
  store.install(he_net_model(dict));
  ServerConfig config;
  config.max_line = 128;
  LiveServer server(store, config);

  auto client = Client::connect("127.0.0.1", server->port());
  ASSERT_TRUE(client.has_value());
  const std::string huge(4096, 'a');  // no newline until way past max_line
  ASSERT_TRUE(client->send_line(huge));
  const auto resp = client->read_line();
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(classify_response(*resp), ResponseKind::kError);
  // Server closes the connection after the error.
  EXPECT_FALSE(client->read_line().has_value());
}

TEST(Server, ManyConnections) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  ModelStore store(dict);
  store.install(he_net_model(dict));
  LiveServer server(store);

  std::vector<Client> clients;
  for (int i = 0; i < 20; ++i) {
    auto c = Client::connect("127.0.0.1", server->port());
    ASSERT_TRUE(c.has_value()) << i;
    clients.push_back(std::move(*c));
  }
  for (Client& c : clients) {
    const auto resp = c.request("e0.cr1.ash1.he.net");
    ASSERT_TRUE(resp.has_value());
    EXPECT_EQ(classify_response(*resp), ResponseKind::kHit);
  }
  const auto stats = clients[0].request("STATS");
  ASSERT_TRUE(stats.has_value());
  EXPECT_NE(stats->find("connections_opened=20"), std::string::npos) << *stats;
}

TEST(Server, GeoVerbAnswersFromSnapshotFuseContext) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  const geo::LocationId ash = find_city(dict, "Ashburn", "us", "va");
  ASSERT_NE(ash, geo::kInvalidLocation);

  ModelStore store(dict);
  store.install(he_net_model(dict));
  // Without a fuse context the verb still answers (extraction-only).
  LiveServer server(store);
  auto client = Client::connect("127.0.0.1", server->port());
  ASSERT_TRUE(client.has_value());
  const auto bare = client->request("GEO e0.cr1.ash1.he.net");
  ASSERT_TRUE(bare.has_value());
  EXPECT_EQ(classify_response(*bare), ResponseKind::kGeo) << *bare;
  EXPECT_NE(bare->find(",ash,"), std::string::npos) << *bare;

  // Arm measurements: one VP at Ashburn pins router 0 there; the address
  // subject resolves through the context to the router's hostname.
  const std::vector<fuse::SubjectRow> subjects = {
      {"e0.cr1.ash1.he.net", 0, ""},
      {"192.0.2.9", 0, "e0.cr1.ash1.he.net"},
  };
  measure::Measurements meas({measure::VantagePoint{"iad", "us", dict.location(ash).coord}},
                             1);
  meas.pings.record(0, 0, 2.0);
  store.set_fuse_context(fuse::FuseContext::build(subjects, std::move(meas), dict));

  const auto by_addr = client->request("GEO 192.0.2.9");
  ASSERT_TRUE(by_addr.has_value());
  EXPECT_EQ(classify_response(*by_addr), ResponseKind::kGeo) << *by_addr;
  EXPECT_NE(by_addr->find(",ash,"), std::string::npos) << *by_addr;

  // A claim at the true location agrees; a claim an ocean away is refuted
  // by the RTT evidence.
  const std::string true_claim = util::fmt_double(dict.location(ash).coord.lat, 4) + "," +
                                 util::fmt_double(dict.location(ash).coord.lon, 4);
  const auto agree = client->request("GEO e0.cr1.ash1.he.net " + true_claim);
  ASSERT_TRUE(agree.has_value());
  EXPECT_NE(agree->find("audit=agree"), std::string::npos) << *agree;

  const auto refute = client->request("GEO e0.cr1.ash1.he.net 51.51,-0.13");
  ASSERT_TRUE(refute.has_value());
  EXPECT_NE(refute->find("audit=refute"), std::string::npos) << *refute;

  // No convention, no measurement: a miss, not an error.
  const auto miss = client->request("GEO unknown.example.org");
  ASSERT_TRUE(miss.has_value());
  EXPECT_EQ(*miss, "GEO,miss");

  // Malformed GEO arguments and unknown verbs answer named errors in-band.
  EXPECT_EQ(*client->request("GEO"), "ERR,geo_usage");
  EXPECT_EQ(*client->request("GEO host 99.0,0.0"), "ERR,bad_coordinate");
  EXPECT_EQ(*client->request("FLUSH"), "ERR,unknown_verb");
  EXPECT_EQ(*client->request("FROBNICATE e0.cr1.ash1.he.net"), "ERR,unknown_verb");
}

TEST(Server, GensAndRollbackVerbsEndToEnd) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  const std::string path = temp_path("serve_rollback_model.txt");
  wipe_gens(path);
  write_model(path, he_net_model(dict), dict);
  ModelStore store(dict, path);
  store.set_keep_generations(4);
  ASSERT_FALSE(store.reload().has_value());  // gen 1: he.net
  LiveServer server(store);
  auto client = Client::connect("127.0.0.1", server->port());
  ASSERT_TRUE(client.has_value());

  const auto gens1 = client->request("GENS");
  ASSERT_TRUE(gens1.has_value());
  EXPECT_EQ(*gens1, "GENS,serving=1,archived=1");

  // Deploy a bad-for-he.net model, then roll it back in-band.
  write_model(path, zayo_model(dict), dict);
  ASSERT_EQ(classify_response(*client->request("RELOAD")), ResponseKind::kReload);
  EXPECT_EQ(*client->request("e0.cr1.ash1.he.net"), "MISS");

  const auto rb = client->request("ROLLBACK 1");
  ASSERT_TRUE(rb.has_value());
  EXPECT_EQ(*rb, "ROLLBACK,ok,generation=3,from=1,conventions=1");
  EXPECT_EQ(classify_response(*client->request("e0.cr1.ash1.he.net")), ResponseKind::kHit);

  const auto gens2 = client->request("GENS");
  ASSERT_TRUE(gens2.has_value());
  EXPECT_EQ(*gens2, "GENS,serving=3,archived=1;2;3");

  // Failure shapes stay in-band and leave the serving model alone.
  EXPECT_EQ(classify_response(*client->request("ROLLBACK 42")),
            ResponseKind::kRollbackError);
  EXPECT_EQ(*client->request("ROLLBACK zero"), "ERR,rollback_usage");
  EXPECT_EQ(classify_response(*client->request("e0.cr1.ash1.he.net")), ResponseKind::kHit);
  EXPECT_EQ(server->metrics().rollbacks.load(), 1u);
}

TEST(Protocol, ParseGeobRequests) {
  const Request ok = parse_request("GEOB 3");
  EXPECT_EQ(ok.kind, RequestKind::kGeoBatch);
  EXPECT_TRUE(ok.error.empty());
  EXPECT_EQ(ok.geob_count, 3u);
  EXPECT_EQ(parse_geob_count("GEOB 3"), std::optional<std::size_t>(3));

  // Usage errors: missing, zero, non-numeric, over-cap counts. The framing
  // probe returns nullopt for all of them — a malformed header must be
  // answered without consuming subject lines.
  for (const char* bad : {"GEOB", "GEOB 0", "GEOB abc",
                          "GEOB 1025" /* kMaxGeobBatch + 1 */}) {
    const Request r = parse_request(bad);
    EXPECT_EQ(r.kind, RequestKind::kGeoBatch) << bad;
    EXPECT_EQ(r.error, "geob_usage") << bad;
    EXPECT_FALSE(parse_geob_count(bad).has_value()) << bad;
  }
  EXPECT_EQ(parse_geob_count("GEOB 1024"), std::optional<std::size_t>(kMaxGeobBatch));

  EXPECT_EQ(format_geob_header(7), "GEOB,7");
  EXPECT_EQ(classify_response("GEOB,7"), ResponseKind::kGeoBatch);
}

TEST(Protocol, ParseDeltaRequests) {
  const Request ok = parse_request("DELTA /tmp/model.delta");
  EXPECT_EQ(ok.kind, RequestKind::kDelta);
  EXPECT_TRUE(ok.error.empty());
  EXPECT_EQ(ok.path, "/tmp/model.delta");

  const Request missing = parse_request("DELTA");
  EXPECT_EQ(missing.kind, RequestKind::kDelta);
  EXPECT_EQ(missing.error, "delta_usage");

  EXPECT_EQ(format_delta_ok(5, 4, 3, 1, 42),
            "DELTA,ok,generation=5,from=4,upserts=3,removes=1,conventions=42");
  EXPECT_EQ(classify_response(format_delta_ok(5, 4, 3, 1, 42)), ResponseKind::kDelta);
  EXPECT_EQ(format_delta_error("stale"), "DELTA,error,stale");
  EXPECT_EQ(classify_response("DELTA,error,stale"), ResponseKind::kDeltaError);
}

TEST(Server, GeobBatchAnswersInSubjectOrder) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  ModelStore store(dict);
  store.install(he_net_model(dict));
  LiveServer server(store);
  auto client = Client::connect("127.0.0.1", server->port());
  ASSERT_TRUE(client.has_value());

  std::string error;
  const auto lines = client->geolocate_batch(
      {"e0.cr1.ash1.he.net", "unknown.example.org", "e0.cr1.lhr1.he.net"}, &error);
  ASSERT_TRUE(lines.has_value()) << error;
  ASSERT_EQ(lines->size(), 3u);
  EXPECT_EQ(classify_response((*lines)[0]), ResponseKind::kGeo) << (*lines)[0];
  EXPECT_NE((*lines)[0].find(",ash,"), std::string::npos) << (*lines)[0];
  EXPECT_EQ((*lines)[1], "GEO,miss");
  EXPECT_NE((*lines)[2].find(",lhr,"), std::string::npos) << (*lines)[2];

  // The batch counters saw one batch of three subjects.
  EXPECT_EQ(server->metrics().geob_batches.load(), 1u);
  EXPECT_EQ(server->metrics().geob_subjects.load(), 3u);

  // The connection stays usable for singles after a batch.
  EXPECT_EQ(classify_response(*client->request("e0.cr1.ash1.he.net")),
            ResponseKind::kHit);

  // An over-cap header is a named in-band error, not a framing stall.
  std::vector<std::string_view> too_many(kMaxGeobBatch + 1, "x.example.org");
  const auto rejected = client->geolocate_batch(too_many, &error);
  EXPECT_FALSE(rejected.has_value());
  EXPECT_FALSE(error.empty());
}

TEST(Server, DeltaVerbAppliesRejectsStaleAndMissing) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  ModelStore store(dict);
  store.install(he_net_model(dict));
  LiveServer server(store);
  auto client = Client::connect("127.0.0.1", server->port());
  ASSERT_TRUE(client.has_value());

  // A delta against the serving generation: upsert zayo.com alongside the
  // installed he.net convention.
  const std::string delta_path = temp_path("serve_delta_file.txt");
  core::ModelDelta delta;
  delta.base_generation = store.generation();
  delta.upserts = zayo_model(dict);
  std::string error;
  ASSERT_TRUE(core::save_model_delta_to_file(delta_path, delta, dict, &error)) << error;

  const auto ok = client->apply_delta(delta_path, &error);
  ASSERT_TRUE(ok.has_value()) << error;
  EXPECT_EQ(classify_response(*ok), ResponseKind::kDelta) << *ok;
  EXPECT_NE(ok->find("upserts=1"), std::string::npos) << *ok;
  EXPECT_EQ(server->metrics().delta_applies.load(), 1u);

  // Both the base and the upserted convention now serve.
  EXPECT_EQ(classify_response(*client->request("e0.cr1.ash1.he.net")),
            ResponseKind::kHit);
  EXPECT_EQ(classify_response(*client->request("lhr1.zayo.com")), ResponseKind::kHit);

  // Replaying the same file targets a now-stale base generation.
  const auto stale = client->apply_delta(delta_path, &error);
  EXPECT_FALSE(stale.has_value());
  EXPECT_NE(error.find("generation"), std::string::npos) << error;
  EXPECT_EQ(server->metrics().delta_rejected.load(), 1u);

  // Missing file and missing argument are in-band errors too.
  EXPECT_FALSE(client->apply_delta(temp_path("no_such.delta"), &error).has_value());
  EXPECT_EQ(*client->request("DELTA"), "ERR,delta_usage");

  // The serving model was never disturbed by the failures.
  EXPECT_EQ(classify_response(*client->request("lhr1.zayo.com")), ResponseKind::kHit);
  std::remove(delta_path.c_str());
}

TEST(Server, CanaryRejectedReloadKeepsServingAndCounts) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  const std::string path = temp_path("serve_canary_model.txt");
  const std::string canary = temp_path("serve_canary_queries.txt");
  wipe_gens(path);
  { std::ofstream out(canary); out << "e0.cr1.ash1.he.net\n"; }
  write_model(path, he_net_model(dict), dict);
  ModelStore store(dict, path);
  store.set_canary(canary);
  ASSERT_FALSE(store.reload().has_value());
  LiveServer server(store);
  auto client = Client::connect("127.0.0.1", server->port());
  ASSERT_TRUE(client.has_value());

  write_model(path, zayo_model(dict), dict);
  const auto bad = client->request("RELOAD");
  ASSERT_TRUE(bad.has_value());
  EXPECT_EQ(classify_response(*bad), ResponseKind::kReloadError) << *bad;
  EXPECT_NE(bad->find("canary rejected"), std::string::npos) << *bad;
  // The gated generation never serves a single query.
  EXPECT_EQ(classify_response(*client->request("e0.cr1.ash1.he.net")), ResponseKind::kHit);
  EXPECT_EQ(server->metrics().reload_rejected.load(), 1u);

  // The rejection surfaces in STATS2 (registry), not the frozen STATS v1.
  const auto stats2 = client->request("STATS2");
  ASSERT_TRUE(stats2.has_value());
  EXPECT_NE(stats2->find("serve_reload_rejected:c=1"), std::string::npos) << *stats2;
  const auto stats = client->request("STATS");
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->find("reload_rejected"), std::string::npos) << *stats;
}

// --- fault tolerance (DESIGN.md §9) ------------------------------------------

// mtime on most filesystems ticks at jiffy granularity; back-to-back writes
// within one tick would compare equal and defeat the watch tests.
void let_mtime_tick() { std::this_thread::sleep_for(std::chrono::milliseconds(20)); }

TEST(ModelStore, PollWatchDebouncesThenReloads) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  const std::string path = temp_path("watch_model.txt");
  write_model(path, he_net_model(dict), dict);
  ModelStore store(dict, path);
  using WO = ModelStore::WatchOutcome;

  // A new mtime must be seen twice before the reload happens.
  EXPECT_EQ(store.poll_watch(), WO::kDebounced);
  EXPECT_EQ(store.poll_watch(), WO::kReloaded);
  EXPECT_EQ(store.current()->convention_count, 1u);
  EXPECT_EQ(store.poll_watch(), WO::kUnchanged);
  EXPECT_EQ(store.poll_watch(), WO::kUnchanged);

  // A transiently missing file (mid-rename deploy) is not a failed reload.
  ASSERT_EQ(::unlink(path.c_str()), 0);
  EXPECT_EQ(store.poll_watch(), WO::kMissing);
  EXPECT_EQ(store.poll_watch(), WO::kMissing);
  EXPECT_TRUE(store.current()->geolocator.locate("e0.cr1.ash1.he.net").has_value());

  let_mtime_tick();
  write_model(path, zayo_model(dict), dict);
  EXPECT_EQ(store.poll_watch(), WO::kDebounced);
  EXPECT_EQ(store.poll_watch(), WO::kReloaded);
  EXPECT_TRUE(store.current()->geolocator.locate("lhr1.zayo.com").has_value());
}

TEST(ModelStore, PollWatchReportsCorruptModelOncePerChange) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  const std::string path = temp_path("watch_corrupt.txt");
  write_model(path, he_net_model(dict), dict);
  ModelStore store(dict, path);
  using WO = ModelStore::WatchOutcome;
  EXPECT_EQ(store.poll_watch(), WO::kDebounced);
  EXPECT_EQ(store.poll_watch(), WO::kReloaded);

  let_mtime_tick();
  { std::ofstream out(path); out << "Z,bogus\n"; }
  std::string error;
  EXPECT_EQ(store.poll_watch(&error), WO::kDebounced);
  EXPECT_EQ(store.poll_watch(&error), WO::kReloadFailed);
  EXPECT_FALSE(error.empty());
  // The failure is not re-reported every poll: the bad stamp was recorded.
  EXPECT_EQ(store.poll_watch(), WO::kUnchanged);
  // And the old model keeps serving throughout.
  EXPECT_TRUE(store.current()->geolocator.locate("e0.cr1.ash1.he.net").has_value());
}

TEST(ModelStore, ReloadFailpointInjectsFailure) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  const std::string path = temp_path("fp_model.txt");
  write_model(path, he_net_model(dict), dict);
  ModelStore store(dict, path);
  ASSERT_TRUE(util::failpoint::configure("store.reload", "error"));
  const auto err = store.reload();
  util::failpoint::reset();
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("injected"), std::string::npos) << *err;
  EXPECT_FALSE(store.reload().has_value());  // disarmed: loads fine
}

TEST(Server, DeadlineExpiredBatchesAnswerErrDeadline) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  ModelStore store(dict);
  store.install(he_net_model(dict));
  ServerConfig config;
  config.request_deadline_ms = 20;
  ASSERT_TRUE(util::failpoint::configure("serve.process", "delay:80"));
  LiveServer server(store, config);
  auto client = Client::connect("127.0.0.1", server->port());
  ASSERT_TRUE(client.has_value());
  const auto resp = client->request("e0.cr1.ash1.he.net");
  util::failpoint::reset();
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(*resp, "ERR,deadline");
  EXPECT_GE(server->metrics().deadline_expired.load(), 1u);
  EXPECT_GE(server->metrics().injected_faults.load(), 1u);
}

TEST(Server, ShedsAboveMaxInflight) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  ModelStore store(dict);
  store.install(he_net_model(dict));
  ServerConfig config;
  config.max_inflight = 1;
  // One slow batch holds the single inflight slot; the next must shed.
  ASSERT_TRUE(util::failpoint::configure("serve.process", "delay:200,times=1"));
  LiveServer server(store, config);
  auto client = Client::connect("127.0.0.1", server->port());
  ASSERT_TRUE(client.has_value());
  ASSERT_TRUE(client->send_line("e0.cr1.ash1.he.net"));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ASSERT_TRUE(client->send_line("e0.cr1.ash1.he.net"));
  const auto first = client->read_line();
  const auto second = client->read_line();
  util::failpoint::reset();
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(classify_response(*first), ResponseKind::kHit) << *first;
  EXPECT_EQ(*second, "ERR,busy");
  EXPECT_EQ(server->metrics().shed_busy.load(), 1u);
}

TEST(Server, IdleConnectionsAreReaped) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  ModelStore store(dict);
  store.install(he_net_model(dict));
  ServerConfig config;
  config.idle_timeout_ms = 50;
  LiveServer server(store, config);
  auto client = Client::connect("127.0.0.1", server->port());
  ASSERT_TRUE(client.has_value());
  const auto resp = client->request("e0.cr1.ash1.he.net");
  ASSERT_TRUE(resp.has_value());
  // Stop talking; the server must close the connection from its side.
  EXPECT_FALSE(client->read_line().has_value());  // EOF from the reap
  EXPECT_GE(server->metrics().idle_closed.load(), 1u);
}

TEST(Server, GracefulDrainDeliversInFlightThenExits) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  ModelStore store(dict);
  store.install(he_net_model(dict));
  ServerConfig config;
  config.drain_timeout_ms = 2000;
  // The in-flight batch sleeps in a worker while drain is requested.
  ASSERT_TRUE(util::failpoint::configure("serve.process", "delay:100,times=1"));
  LiveServer server(store, config);
  auto client = Client::connect("127.0.0.1", server->port());
  ASSERT_TRUE(client.has_value());
  ASSERT_TRUE(client->send_line("e0.cr1.ash1.he.net"));
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  server->drain();
  // The in-flight answer still arrives, then the server closes the
  // connection and the run loop exits on its own.
  const auto resp = client->read_line();
  util::failpoint::reset();
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(classify_response(*resp), ResponseKind::kHit) << *resp;
  EXPECT_FALSE(client->read_line().has_value());
  // New connections are refused once the listener is gone.
  for (int i = 0; i < 50; ++i) {
    if (!Client::connect("127.0.0.1", server->port()).has_value()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_FALSE(Client::connect("127.0.0.1", server->port()).has_value());
}

TEST(Client, ConnectWithRetryGivesUpAfterMaxAttempts) {
  ClientOptions options;
  options.max_attempts = 2;
  options.backoff_initial_ms = 1;
  options.connect_timeout_ms = 500;
  std::string error;
  // Port 1 on loopback: nothing listens there in any sane environment.
  const auto client = Client::connect_with_retry("127.0.0.1", 1, options, &error);
  EXPECT_FALSE(client.has_value());
  EXPECT_FALSE(error.empty());
}

TEST(Client, ConnectWithRetryHonorsOverallDeadline) {
  ClientOptions options;
  options.max_attempts = 1000000;  // attempts would retry for ~forever
  options.backoff_initial_ms = 20;
  options.backoff_max_ms = 40;
  options.overall_deadline_ms = 150;
  std::string error;
  const auto start = std::chrono::steady_clock::now();
  // Port 1 on loopback refuses instantly, so only the deadline can stop us.
  const auto client = Client::connect_with_retry("127.0.0.1", 1, options, &error);
  const auto waited = std::chrono::steady_clock::now() - start;
  EXPECT_FALSE(client.has_value());
  // Exhaustion reports the same "timed out" wording a single timed-out
  // connect uses, so callers match one string for both shapes.
  EXPECT_NE(error.find("timed out"), std::string::npos) << error;
  EXPECT_GE(waited, std::chrono::milliseconds(100));
  EXPECT_LT(waited, std::chrono::seconds(5));
}

TEST(Client, ConnectWithRetrySurvivesLateServer) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  ModelStore store(dict);
  store.install(he_net_model(dict));
  // Reserve a port, then bring the server up only after a delay while the
  // client is already retrying against it.
  ServerConfig config;
  std::unique_ptr<LiveServer> server;
  std::thread starter;
  {
    // Find a free port by binding and closing (small race, fine for tests).
    std::string error;
    util::Fd probe = util::listen_tcp(0, &error, false);
    ASSERT_TRUE(probe.valid()) << error;
    const auto port = util::local_port(probe.get());
    ASSERT_TRUE(port.has_value());
    config.port = *port;
    probe.reset();
    starter = std::thread([&server, &store, config]() {
      std::this_thread::sleep_for(std::chrono::milliseconds(150));
      server = std::make_unique<LiveServer>(store, config);
    });
  }
  ClientOptions options;
  options.max_attempts = 40;
  options.backoff_initial_ms = 20;
  options.backoff_max_ms = 100;
  options.connect_timeout_ms = 500;
  std::string error;
  auto client = Client::connect_with_retry("127.0.0.1", config.port, options, &error);
  starter.join();
  ASSERT_TRUE(client.has_value()) << error;
  const auto resp = client->request("e0.cr1.ash1.he.net");
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(classify_response(*resp), ResponseKind::kHit);
}

TEST(Client, ReadTimeoutIsDistinguishableFromEof) {
  // A listener that never accepts: the connect succeeds (backlog) but no
  // response ever comes, so the read must time out rather than hang.
  std::string error;
  util::Fd listener = util::listen_tcp(0, &error, false);
  ASSERT_TRUE(listener.valid()) << error;
  const auto port = util::local_port(listener.get());
  ASSERT_TRUE(port.has_value());
  ClientOptions options;
  options.io_timeout_ms = 50;
  auto client = Client::connect("127.0.0.1", *port, &error, options);
  ASSERT_TRUE(client.has_value()) << error;
  ASSERT_TRUE(client->send_line("hello?"));
  const auto start = std::chrono::steady_clock::now();
  const auto resp = client->read_line();
  const auto waited = std::chrono::steady_clock::now() - start;
  EXPECT_FALSE(resp.has_value());
  EXPECT_TRUE(client->timed_out());
  EXPECT_LT(waited, std::chrono::seconds(5));
}

TEST(Server, InjectedAcceptFailureIsTransient) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  ModelStore store(dict);
  store.install(he_net_model(dict));
  ASSERT_TRUE(util::failpoint::configure("serve.accept", "error:EMFILE,times=2"));
  LiveServer server(store);
  // The first accepts are injected failures; the connection stays in the
  // backlog and is accepted once the failpoint is exhausted.
  auto client = Client::connect("127.0.0.1", server->port());
  ASSERT_TRUE(client.has_value());
  const auto resp = client->request("e0.cr1.ash1.he.net");
  util::failpoint::reset();
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(classify_response(*resp), ResponseKind::kHit);
  EXPECT_GE(server->metrics().injected_faults.load(), 2u);
}

}  // namespace
}  // namespace hoiho::serve
