// End-to-end tests for the serving subsystem: protocol grammar, the
// hot-reloadable ModelStore, and a live epoll Server driven through the
// blocking Client over loopback.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>

#include "core/nc_io.h"
#include "regex/parser.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"

namespace hoiho::serve {
namespace {

geo::LocationId find_city(const geo::GeoDictionary& dict, std::string_view city,
                          std::string_view country, std::string_view state = "") {
  for (geo::LocationId id :
       dict.lookup(geo::HintType::kCityName, geo::squash_place_name(city))) {
    if (!geo::same_country(dict.location(id).country, country)) continue;
    if (!state.empty() && dict.location(id).state != state) continue;
    return id;
  }
  return geo::kInvalidLocation;
}

// The he.net-style convention from test_nc_io: IATA extraction plus the
// learned "ash" -> Ashburn VA deviation.
std::vector<core::StoredConvention> he_net_model(const geo::GeoDictionary& dict) {
  std::vector<core::StoredConvention> out(1);
  out[0].nc.suffix = "he.net";
  out[0].cls = core::NcClass::kGood;
  core::GeoRegex gr;
  gr.regex = *rx::parse("^.+\\.([a-z]{3})\\d+\\.he\\.net$");
  gr.plan.roles = {core::Role::kIata};
  out[0].nc.regexes.push_back(std::move(gr));
  out[0].nc.learned[{geo::HintType::kIata, "ash"}] = find_city(dict, "Ashburn", "us", "va");
  return out;
}

std::vector<core::StoredConvention> zayo_model(const geo::GeoDictionary& dict) {
  (void)dict;
  std::vector<core::StoredConvention> out(1);
  out[0].nc.suffix = "zayo.com";
  out[0].cls = core::NcClass::kGood;
  core::GeoRegex gr;
  gr.regex = *rx::parse("^([a-z]{3})\\d+\\.zayo\\.com$");
  gr.plan.roles = {core::Role::kIata};
  out[0].nc.regexes.push_back(std::move(gr));
  return out;
}

void write_model(const std::string& path, const std::vector<core::StoredConvention>& m,
                 const geo::GeoDictionary& dict) {
  std::ofstream out(path);
  core::save_conventions(out, m, dict);
}

std::string temp_path(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

// A Server on an ephemeral loopback port, running in its own thread.
class LiveServer {
 public:
  explicit LiveServer(ModelStore& store, ServerConfig config = {}) : server_(store, config) {
    std::string error;
    started_ = server_.start(&error);
    EXPECT_TRUE(started_) << error;
    if (started_) thread_ = std::thread([this] { server_.run(); });
  }
  ~LiveServer() {
    if (started_) {
      server_.stop();
      thread_.join();
    }
  }
  Server& operator*() { return server_; }
  Server* operator->() { return &server_; }

 private:
  Server server_;
  bool started_ = false;
  std::thread thread_;
};

// --- protocol ----------------------------------------------------------------

TEST(Protocol, ParseRequestKinds) {
  EXPECT_EQ(parse_request("foo.he.net").kind, RequestKind::kLookup);
  EXPECT_EQ(parse_request("foo.he.net").hostname, "foo.he.net");
  EXPECT_EQ(parse_request("STATS").kind, RequestKind::kStats);
  EXPECT_EQ(parse_request("RELOAD").kind, RequestKind::kReload);
  EXPECT_EQ(parse_request("").kind, RequestKind::kEmpty);
  EXPECT_EQ(parse_request("\r").kind, RequestKind::kEmpty);
  EXPECT_EQ(parse_request("STATS\r").kind, RequestKind::kStats);
  // Verbs are case-sensitive; anything else is a hostname lookup.
  EXPECT_EQ(parse_request("stats").kind, RequestKind::kLookup);
}

TEST(Protocol, FormatAndClassify) {
  core::Geolocation g;
  g.coord = {38.96, -77.35};
  g.code = "ash";
  g.via_learned = true;
  EXPECT_EQ(format_hit(g), "38.9600,-77.3500,ash,learned");
  EXPECT_EQ(classify_response(format_hit(g)), ResponseKind::kHit);
  EXPECT_EQ(classify_response(format_miss()), ResponseKind::kMiss);
  EXPECT_EQ(classify_response(format_error("x")), ResponseKind::kError);
  EXPECT_EQ(classify_response(format_reload_ok(2, 5)), ResponseKind::kReload);
  EXPECT_EQ(classify_response(format_reload_error("nope")), ResponseKind::kReloadError);
  Metrics m;
  EXPECT_EQ(classify_response(format_stats(m.snapshot(), 1, 3)), ResponseKind::kStats);
}

// --- ModelStore --------------------------------------------------------------

TEST(ModelStore, InstallPublishesNewGeneration) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  ModelStore store(dict);
  EXPECT_EQ(store.current()->generation, 0u);  // empty initial snapshot
  store.install(he_net_model(dict));
  const auto snap = store.current();
  EXPECT_EQ(snap->generation, 1u);
  EXPECT_EQ(snap->convention_count, 1u);
  EXPECT_TRUE(snap->geolocator.locate("e0.cr1.ash1.he.net").has_value());
}

TEST(ModelStore, ReloadFromFileAndKeepOldOnFailure) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  const std::string path = temp_path("store_model.txt");
  write_model(path, he_net_model(dict), dict);
  ModelStore store(dict, path);
  EXPECT_FALSE(store.reload().has_value());
  const auto good = store.current();
  EXPECT_EQ(good->convention_count, 1u);

  {
    std::ofstream out(path);
    out << "Z,bogus\n";  // unknown record type
  }
  const auto err = store.reload();
  EXPECT_TRUE(err.has_value());
  // Old snapshot still serves.
  EXPECT_EQ(store.current().get(), good.get());
  EXPECT_TRUE(store.current()->geolocator.locate("e0.cr1.ash1.he.net").has_value());
}

TEST(ModelStore, SnapshotOutlivesSwap) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  ModelStore store(dict);
  store.install(he_net_model(dict));
  const auto pinned = store.current();
  store.install(zayo_model(dict));
  // The pinned snapshot still answers with the old model.
  EXPECT_TRUE(pinned->geolocator.locate("e0.cr1.ash1.he.net").has_value());
  // The current one answers with the new model only.
  EXPECT_FALSE(store.current()->geolocator.locate("e0.cr1.ash1.he.net").has_value());
  EXPECT_TRUE(store.current()->geolocator.locate("lhr1.zayo.com").has_value());
}

// --- Server ------------------------------------------------------------------

TEST(Server, LookupStatsAndMiss) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  ModelStore store(dict);
  store.install(he_net_model(dict));
  LiveServer server(store);

  auto client = Client::connect("127.0.0.1", server->port());
  ASSERT_TRUE(client.has_value());

  const auto hit = client->request("e0.cr1.ash1.he.net");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(classify_response(*hit), ResponseKind::kHit);
  EXPECT_NE(hit->find("ash,learned"), std::string::npos);

  const auto dict_hit = client->request("e0.cr1.lhr1.he.net");
  ASSERT_TRUE(dict_hit.has_value());
  EXPECT_NE(dict_hit->find("lhr,dictionary"), std::string::npos);

  const auto miss = client->request("unknown.example.org");
  ASSERT_TRUE(miss.has_value());
  EXPECT_EQ(*miss, "MISS");

  const auto empty = client->request("");
  ASSERT_TRUE(empty.has_value());
  EXPECT_EQ(classify_response(*empty), ResponseKind::kError);

  const auto stats = client->request("STATS");
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(classify_response(*stats), ResponseKind::kStats);
  EXPECT_NE(stats->find("requests=3"), std::string::npos);
  EXPECT_NE(stats->find("hits=2"), std::string::npos);
  EXPECT_NE(stats->find("misses=1"), std::string::npos);
  EXPECT_NE(stats->find("errors=1"), std::string::npos);
  EXPECT_NE(stats->find("conventions=1"), std::string::npos);
}

TEST(Server, PipelinedResponsesArriveInOrder) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  ModelStore store(dict);
  store.install(he_net_model(dict));
  ServerConfig config;
  config.max_batch = 8;  // force many batches per burst
  LiveServer server(store, config);

  auto client = Client::connect("127.0.0.1", server->port());
  ASSERT_TRUE(client.has_value());

  // Alternate two requests with distinguishable answers across a burst far
  // larger than one batch, so reordering across workers would be visible.
  std::vector<std::string> requests;
  for (int i = 0; i < 500; ++i)
    requests.push_back(i % 2 == 0 ? "e0.ash1.he.net" : "e0.lhr1.he.net");
  ASSERT_TRUE(client->send_lines(requests));
  for (int i = 0; i < 500; ++i) {
    const auto resp = client->read_line();
    ASSERT_TRUE(resp.has_value()) << "response " << i;
    const char* expected = i % 2 == 0 ? "ash,learned" : "lhr,dictionary";
    EXPECT_NE(resp->find(expected), std::string::npos)
        << "response " << i << " out of order: " << *resp;
  }
}

TEST(Server, ReloadSwapsModelWithoutDroppingConnections) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  const std::string path = temp_path("reload_model.txt");
  write_model(path, he_net_model(dict), dict);
  ModelStore store(dict, path);
  ASSERT_FALSE(store.reload().has_value());
  LiveServer server(store);

  auto client = Client::connect("127.0.0.1", server->port());
  ASSERT_TRUE(client.has_value());
  EXPECT_EQ(classify_response(*client->request("e0.ash1.he.net")), ResponseKind::kHit);

  // Swap the file for a different operator's model and RELOAD in-band.
  write_model(path, zayo_model(dict), dict);
  const auto reload = client->request("RELOAD");
  ASSERT_TRUE(reload.has_value());
  EXPECT_EQ(classify_response(*reload), ResponseKind::kReload) << *reload;

  // Same connection, new model: he.net now misses, zayo.com hits.
  EXPECT_EQ(*client->request("e0.ash1.he.net"), "MISS");
  EXPECT_EQ(classify_response(*client->request("lhr1.zayo.com")), ResponseKind::kHit);

  // A botched model keeps the old one serving.
  { std::ofstream out(path); out << "S,zayo.com\n"; }  // wrong arity
  const auto bad = client->request("RELOAD");
  ASSERT_TRUE(bad.has_value());
  EXPECT_EQ(classify_response(*bad), ResponseKind::kReloadError) << *bad;
  EXPECT_EQ(classify_response(*client->request("lhr1.zayo.com")), ResponseKind::kHit);
}

TEST(Server, OversizedLineIsRejected) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  ModelStore store(dict);
  store.install(he_net_model(dict));
  ServerConfig config;
  config.max_line = 128;
  LiveServer server(store, config);

  auto client = Client::connect("127.0.0.1", server->port());
  ASSERT_TRUE(client.has_value());
  const std::string huge(4096, 'a');  // no newline until way past max_line
  ASSERT_TRUE(client->send_line(huge));
  const auto resp = client->read_line();
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(classify_response(*resp), ResponseKind::kError);
  // Server closes the connection after the error.
  EXPECT_FALSE(client->read_line().has_value());
}

TEST(Server, ManyConnections) {
  const geo::GeoDictionary& dict = geo::builtin_dictionary();
  ModelStore store(dict);
  store.install(he_net_model(dict));
  LiveServer server(store);

  std::vector<Client> clients;
  for (int i = 0; i < 20; ++i) {
    auto c = Client::connect("127.0.0.1", server->port());
    ASSERT_TRUE(c.has_value()) << i;
    clients.push_back(std::move(*c));
  }
  for (Client& c : clients) {
    const auto resp = c.request("e0.cr1.ash1.he.net");
    ASSERT_TRUE(resp.has_value());
    EXPECT_EQ(classify_response(*resp), ResponseKind::kHit);
  }
  const auto stats = clients[0].request("STATS");
  ASSERT_TRUE(stats.has_value());
  EXPECT_NE(stats->find("connections_opened=20"), std::string::npos) << *stats;
}

}  // namespace
}  // namespace hoiho::serve
