// Unit tests for measurement-campaign file I/O (measure/rtt_io.h).
#include "measure/rtt_io.h"

#include <gtest/gtest.h>

#include <sstream>

namespace hoiho::measure {
namespace {

Measurements sample() {
  Measurements meas({VantagePoint{"was", "us", {38.91, -77.04}},
                     VantagePoint{"lon", "uk", {51.51, -0.13}}},
                    3);
  meas.pings.record(0, 0, 1.25);
  meas.pings.record(0, 1, 72.5);
  meas.pings.record(2, 1, 3.0);
  return meas;
}

TEST(RttIo, RoundTrip) {
  const Measurements original = sample();
  std::ostringstream out;
  save_measurements(out, original);
  std::istringstream in(out.str());
  std::string error;
  const auto loaded = load_measurements(in, 3, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  ASSERT_EQ(loaded->vps.size(), 2u);
  EXPECT_EQ(loaded->vps[1].name, "lon");
  EXPECT_NEAR(loaded->vps[0].coord.lat, 38.91, 1e-3);
  ASSERT_TRUE(loaded->pings.rtt(0, 0).has_value());
  EXPECT_NEAR(*loaded->pings.rtt(0, 0), 1.25, 1e-3);
  EXPECT_NEAR(*loaded->pings.rtt(2, 1), 3.0, 1e-3);
  EXPECT_FALSE(loaded->pings.rtt(1, 0).has_value());
}

TEST(RttIo, SamplesBeforeVpDeclarationsAccepted) {
  std::istringstream in("R,0,was,5.0\nV,was,us,38.91,-77.04\n");
  const auto loaded = load_measurements(in, 1);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_NEAR(*loaded->pings.rtt(0, 0), 5.0, 1e-9);
}

TEST(RttIo, RepeatedSamplesKeepMinimum) {
  std::istringstream in("V,was,us,38.91,-77.04\nR,0,was,5.0\nR,0,was,2.0\nR,0,was,9.0\n");
  const auto loaded = load_measurements(in, 1);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_NEAR(*loaded->pings.rtt(0, 0), 2.0, 1e-9);
}

TEST(RttIo, RejectsUnknownVp) {
  std::istringstream in("V,was,us,38.91,-77.04\nR,0,nowhere,5.0\n");
  std::string error;
  EXPECT_FALSE(load_measurements(in, 1, &error).has_value());
  EXPECT_NE(error.find("unknown VP"), std::string::npos);
}

TEST(RttIo, RejectsOutOfRangeRouter) {
  std::istringstream in("V,was,us,38.91,-77.04\nR,7,was,5.0\n");
  std::string error;
  EXPECT_FALSE(load_measurements(in, 3, &error).has_value());
  EXPECT_NE(error.find("out of range"), std::string::npos);
}

TEST(RttIo, RejectsDuplicateVp) {
  std::istringstream in("V,was,us,38.91,-77.04\nV,was,us,1,1\n");
  std::string error;
  EXPECT_FALSE(load_measurements(in, 1, &error).has_value());
  EXPECT_NE(error.find("duplicate"), std::string::npos);
}

TEST(RttIo, RejectsBadCoordinatesAndNegativeRtt) {
  std::istringstream bad_coord("V,was,us,123.0,-77.04\n");
  EXPECT_FALSE(load_measurements(bad_coord, 1).has_value());
  std::istringstream bad_rtt("V,was,us,38.91,-77.04\nR,0,was,-1\n");
  EXPECT_FALSE(load_measurements(bad_rtt, 1).has_value());
}

TEST(RttIo, CommentsAndUnknownRecords) {
  std::istringstream ok("# header\nV,was,us,38.91,-77.04\n");
  EXPECT_TRUE(load_measurements(ok, 1).has_value());
  std::istringstream bad("Q,strange\n");
  std::string error;
  EXPECT_FALSE(load_measurements(bad, 1, &error).has_value());
  EXPECT_NE(error.find("unknown record"), std::string::npos);
}

}  // namespace
}  // namespace hoiho::measure
