// Crash/resume durability for checkpointed streaming runs (DESIGN.md §14):
//
//   * kill-at-every-boundary — a run that dies on any batch commit resumes
//     from the WAL and produces a byte-identical final model;
//   * torn tail — bytes past the last committed manifest state are
//     truncated on open, not treated as corruption;
//   * corrupt manifest / signature mismatch — the whole checkpoint is
//     discarded and the run starts fresh (never trusts a half-valid WAL);
//   * counters — committed/resumed/discarded surface in the registry.
#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/hoiho.h"
#include "core/nc_io.h"
#include "core/ncb.h"
#include "obs/metrics.h"
#include "sim/streaming.h"
#include "util/failpoint.h"

namespace hoiho::core {
namespace {

sim::StreamingWorldConfig small_config() {
  sim::StreamingWorldConfig config;
  config.seed = 77;
  config.suffixes = 40;
  config.target_hostnames = 1200;
  config.max_hostnames_per_suffix = 256;
  config.vp_count = 16;
  config.batch_hostname_budget = 300;
  config.traits.geohint_scheme_rate = 0.8;
  config.traits.hostname_rate = 0.85;
  return config;
}

// The exact bytes a finished run would publish as its model file (minus the
// checksum footer, which save_conventions_to_file adds). "Byte-identical
// resume" is asserted against this serialization.
std::string model_bytes(const HoihoResult& result) {
  std::vector<StoredConvention> stored;
  for (const SuffixResult& sr : result.suffixes)
    if (sr.usable()) stored.push_back(StoredConvention{sr.nc, sr.cls});
  std::ostringstream os;
  save_conventions(os, stored, geo::builtin_dictionary());
  return os.str();
}

// Every per-suffix outcome a streamed run retains, including the eval
// counts the model file does not carry — a stricter equality than the
// serialized model alone.
std::string compact_dump(const HoihoResult& result) {
  std::ostringstream os;
  for (const SuffixResult& sr : result.suffixes) {
    os << sr.suffix << " hostnames=" << sr.hostname_count << " tagged=" << sr.tagged_count
       << " cls=" << to_string(sr.cls) << " tp=" << sr.eval.counts.tp
       << " fp=" << sr.eval.counts.fp << " fn=" << sr.eval.counts.fn
       << " unk=" << sr.eval.counts.unk << " none=" << sr.eval.counts.none
       << " sets=" << sr.eval.regex_unique_tp.size()
       << " uniq=" << sr.eval.unique_tp_codes.size() << "\n";
    for (const GeoRegex& gr : sr.nc.regexes)
      os << "  rx " << gr.to_string() << " (" << gr.plan.to_string() << ")\n";
    for (const LearnedHint& lh : sr.learned)
      os << "  learned " << static_cast<int>(lh.type) << ":" << lh.code << "->" << lh.location
         << "\n";
  }
  return os.str();
}

struct StreamRun {
  HoihoResult result;
  obs::Snapshot snap;
};

StreamRun run_with_checkpoint(const std::string& dir) {
  sim::StreamingWorld world(geo::builtin_dictionary(), small_config());
  HoihoConfig hc;
  hc.threads = 1;
  hc.checkpoint_dir = dir;
  obs::Registry registry;
  hc.registry = &registry;
  StreamRun run;
  run.result = Hoiho(geo::builtin_dictionary(), hc).run_stream(world);
  run.snap = registry.snapshot();
  return run;
}

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  std::remove((dir + "/wal.log").c_str());
  std::remove((dir + "/MANIFEST").c_str());
  ::rmdir(dir.c_str());
  return dir;
}

TEST(Checkpoint, KillAtEveryBatchBoundaryResumesByteIdentical) {
  // Golden: one uninterrupted checkpointed run.
  const StreamRun golden = run_with_checkpoint(fresh_dir("ckpt_golden"));
  const std::string golden_model = model_bytes(golden.result);
  const std::string golden_dump = compact_dump(golden.result);
  const std::uint64_t batches = golden.snap.value("pipeline_stream_batches");
  ASSERT_GT(batches, 2u) << "need multiple batches to exercise boundaries";
  EXPECT_EQ(golden.snap.value("checkpoint_batches_committed"), batches);
  EXPECT_EQ(golden.snap.value("checkpoint_commit_failures"), 0u);
  EXPECT_FALSE(golden_model.empty());

  for (std::uint64_t k = 1; k <= batches; ++k) {
    const std::string dir = fresh_dir("ckpt_kill_" + std::to_string(k));

    // "Crash" on the k-th commit: commits 1..k-1 land, the k-th batch's
    // results are dropped exactly as a SIGKILL at that instant would.
    ASSERT_TRUE(util::failpoint::configure(
        "checkpoint_write", "error:EIO,every=" + std::to_string(k) + ",times=1"));
    const StreamRun killed = run_with_checkpoint(dir);
    util::failpoint::reset();
    EXPECT_EQ(killed.snap.value("checkpoint_commit_failures"), 1u) << "boundary " << k;
    EXPECT_EQ(killed.snap.value("checkpoint_batches_committed"), k - 1);
    EXPECT_LT(killed.result.suffixes.size(), golden.result.suffixes.size());

    // Resume: a fresh process replays only the uncommitted batches.
    const StreamRun resumed = run_with_checkpoint(dir);
    EXPECT_EQ(resumed.snap.value("checkpoint_batches_resumed"), k - 1) << "boundary " << k;
    EXPECT_EQ(resumed.snap.value("checkpoint_discarded"), 0u);
    EXPECT_EQ(resumed.snap.value("checkpoint_batches_committed"), batches - (k - 1));
    EXPECT_EQ(model_bytes(resumed.result), golden_model) << "boundary " << k;
    EXPECT_EQ(compact_dump(resumed.result), golden_dump) << "boundary " << k;
  }
}

TEST(Checkpoint, ResumingACompleteRunReplaysNothing) {
  const std::string dir = fresh_dir("ckpt_complete");
  const StreamRun first = run_with_checkpoint(dir);
  const std::uint64_t batches = first.snap.value("pipeline_stream_batches");

  const StreamRun again = run_with_checkpoint(dir);
  EXPECT_EQ(again.snap.value("checkpoint_batches_resumed"), batches);
  EXPECT_EQ(again.snap.value("checkpoint_batches_committed"), 0u);
  EXPECT_EQ(again.snap.value("checkpoint_results_resumed"), first.result.suffixes.size());
  EXPECT_EQ(compact_dump(again.result), compact_dump(first.result));
  EXPECT_EQ(model_bytes(again.result), model_bytes(first.result));
}

TEST(Checkpoint, TornWalTailIsTruncatedNotFatal) {
  const std::string dir = fresh_dir("ckpt_torn");
  ASSERT_TRUE(util::failpoint::configure("checkpoint_write", "error:EIO,every=3,times=1"));
  run_with_checkpoint(dir);
  util::failpoint::reset();

  // A crash mid-append leaves bytes past the committed manifest state; they
  // must be dropped on open, not treated as corruption.
  {
    std::ofstream wal(dir + "/wal.log", std::ios::app | std::ios::binary);
    ASSERT_TRUE(wal.is_open());
    wal << "B,9999,1\nGARBAGE que no parsea\n";
  }
  const StreamRun resumed = run_with_checkpoint(dir);
  EXPECT_EQ(resumed.snap.value("checkpoint_discarded"), 0u);
  EXPECT_EQ(resumed.snap.value("checkpoint_batches_resumed"), 2u);

  const StreamRun golden = run_with_checkpoint(fresh_dir("ckpt_torn_golden"));
  EXPECT_EQ(model_bytes(resumed.result), model_bytes(golden.result));
  EXPECT_EQ(compact_dump(resumed.result), compact_dump(golden.result));
}

TEST(Checkpoint, CorruptManifestDiscardsAndStartsFresh) {
  const std::string dir = fresh_dir("ckpt_badmanifest");
  run_with_checkpoint(dir);

  std::string manifest;
  {
    std::ifstream in(dir + "/MANIFEST", std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    manifest = os.str();
  }
  ASSERT_FALSE(manifest.empty());
  manifest[manifest.size() / 2] ^= 0x20;  // flip one bit under the checksum
  {
    std::ofstream out(dir + "/MANIFEST", std::ios::binary | std::ios::trunc);
    out << manifest;
  }

  const StreamRun rerun = run_with_checkpoint(dir);
  EXPECT_EQ(rerun.snap.value("checkpoint_discarded"), 1u);
  EXPECT_EQ(rerun.snap.value("checkpoint_batches_resumed"), 0u);
  // The discarded state is replaced: the rerun recommits every batch and the
  // model matches an uninterrupted run.
  EXPECT_EQ(rerun.snap.value("checkpoint_batches_committed"),
            rerun.snap.value("pipeline_stream_batches"));
  const StreamRun golden = run_with_checkpoint(fresh_dir("ckpt_badmanifest_golden"));
  EXPECT_EQ(model_bytes(rerun.result), model_bytes(golden.result));
}

TEST(Checkpoint, ShortWalDiscardsAndStartsFresh) {
  const std::string dir = fresh_dir("ckpt_shortwal");
  run_with_checkpoint(dir);
  // Truncate the WAL below what the manifest committed: the prefix hash
  // cannot verify, so the checkpoint must be discarded wholesale.
  {
    std::ifstream in(dir + "/wal.log", std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    const std::string wal = os.str();
    std::ofstream out(dir + "/wal.log", std::ios::binary | std::ios::trunc);
    out << wal.substr(0, wal.size() / 2);
  }
  const StreamRun rerun = run_with_checkpoint(dir);
  EXPECT_EQ(rerun.snap.value("checkpoint_discarded"), 1u);
  EXPECT_EQ(rerun.snap.value("checkpoint_batches_resumed"), 0u);
}

TEST(Checkpoint, ConfigChangeInvalidatesTheCheckpoint) {
  const std::string dir = fresh_dir("ckpt_sig");
  run_with_checkpoint(dir);

  // Same directory, different learning config: the signature differs, so
  // resuming would splice results from another run — discard instead.
  sim::StreamingWorld world(geo::builtin_dictionary(), small_config());
  HoihoConfig hc;
  hc.threads = 1;
  hc.checkpoint_dir = dir;
  hc.learn_top_n = hc.learn_top_n + 1;
  obs::Registry registry;
  hc.registry = &registry;
  Hoiho(geo::builtin_dictionary(), hc).run_stream(world);
  const obs::Snapshot snap = registry.snapshot();
  EXPECT_EQ(snap.value("checkpoint_discarded"), 1u);
  EXPECT_EQ(snap.value("checkpoint_batches_resumed"), 0u);
}

TEST(Checkpoint, WorldChangeInvalidatesTheCheckpoint) {
  const std::string dir = fresh_dir("ckpt_world");
  run_with_checkpoint(dir);

  sim::StreamingWorldConfig wc = small_config();
  wc.seed = 78;  // a different stream must not resume another stream's WAL
  sim::StreamingWorld world(geo::builtin_dictionary(), wc);
  HoihoConfig hc;
  hc.threads = 1;
  hc.checkpoint_dir = dir;
  obs::Registry registry;
  hc.registry = &registry;
  Hoiho(geo::builtin_dictionary(), hc).run_stream(world);
  const obs::Snapshot snap = registry.snapshot();
  EXPECT_EQ(snap.value("checkpoint_discarded"), 1u);
  EXPECT_EQ(snap.value("checkpoint_batches_resumed"), 0u);
}

TEST(Checkpoint, ParallelRunsCheckpointIdenticallyToSequential) {
  const StreamRun seq = run_with_checkpoint(fresh_dir("ckpt_seq"));

  sim::StreamingWorld world(geo::builtin_dictionary(), small_config());
  HoihoConfig hc;
  hc.threads = 8;
  hc.checkpoint_dir = fresh_dir("ckpt_par");
  obs::Registry registry;
  hc.registry = &registry;
  const HoihoResult par = Hoiho(geo::builtin_dictionary(), hc).run_stream(world);
  EXPECT_EQ(model_bytes(par), model_bytes(seq.result));
  EXPECT_EQ(compact_dump(par), compact_dump(seq.result));

  // And the parallel run's WAL resumes under a sequential config: batch
  // contents are thread-count invariant, so the signatures must agree.
  const StreamRun resumed = run_with_checkpoint(hc.checkpoint_dir);
  EXPECT_EQ(resumed.snap.value("checkpoint_discarded"), 0u);
  EXPECT_EQ(resumed.snap.value("checkpoint_batches_resumed"),
            seq.snap.value("pipeline_stream_batches"));
  EXPECT_EQ(model_bytes(resumed.result), model_bytes(seq.result));
}

TEST(Checkpoint, UncheckpointedRunsAreUnaffected) {
  sim::StreamingWorld world(geo::builtin_dictionary(), small_config());
  HoihoConfig hc;
  hc.threads = 1;
  obs::Registry registry;
  hc.registry = &registry;
  const HoihoResult result = Hoiho(geo::builtin_dictionary(), hc).run_stream(world);
  const obs::Snapshot snap = registry.snapshot();
  EXPECT_EQ(snap.value("checkpoint_batches_committed"), 0u);
  EXPECT_EQ(snap.value("checkpoint_discarded"), 0u);
  const StreamRun checkpointed = run_with_checkpoint(fresh_dir("ckpt_off_golden"));
  EXPECT_EQ(model_bytes(result), model_bytes(checkpointed.result));
}

TEST(Checkpoint, RunStreamEmitsModelOutInTheExtensionFormat) {
  // The learner writes the serving model itself — ".ncb" picks the binary
  // format, and the emitted file round-trips through the binary loader to
  // the same conventions the run produced.
  const std::string path = ::testing::TempDir() + "/stream_model_out.ncb";
  std::remove(path.c_str());
  sim::StreamingWorld world(geo::builtin_dictionary(), small_config());
  HoihoConfig hc;
  hc.threads = 1;
  hc.model_out = path;
  obs::Registry registry;
  hc.registry = &registry;
  const HoihoResult result = Hoiho(geo::builtin_dictionary(), hc).run_stream(world);
  EXPECT_EQ(registry.snapshot().value("pipeline_model_save_failures"), 0u);

  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.is_open()) << "run_stream did not write " << path;
  std::ostringstream os;
  os << in.rdbuf();
  ASSERT_EQ(detect_model_format(os.str()), ModelFormat::kNcb);

  std::string err;
  const auto model = NcbModel::from_bytes(os.str(), &err);
  ASSERT_NE(model, nullptr) << err;
  std::size_t expected = 0;
  for (const SuffixResult& sr : result.suffixes)
    if (sr.has_nc()) ++expected;
  EXPECT_EQ(model->convention_count(), expected);
  std::remove(path.c_str());
}

TEST(Checkpoint, TruncatedRunDoesNotOverwriteModelOut) {
  // A commit failure leaves a prefix of the stream, not the model the
  // caller asked for: the previous good file must survive untouched.
  const std::string path = ::testing::TempDir() + "/stream_model_trunc.ncb";
  const std::string sentinel = "previous good model bytes";
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << sentinel;
  }
  const std::string dir = fresh_dir("ckpt_model_trunc");
  sim::StreamingWorld world(geo::builtin_dictionary(), small_config());
  HoihoConfig hc;
  hc.threads = 1;
  hc.checkpoint_dir = dir;
  hc.model_out = path;
  ASSERT_TRUE(util::failpoint::configure("checkpoint_write", "error:EIO,every=2,times=1"));
  Hoiho(geo::builtin_dictionary(), hc).run_stream(world);
  util::failpoint::reset();

  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  EXPECT_EQ(os.str(), sentinel);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace hoiho::core
