// Unit tests for util/strings.h.
#include "util/strings.h"

#include <gtest/gtest.h>

namespace hoiho::util {
namespace {

TEST(ToLower, Basic) {
  EXPECT_EQ(to_lower("AbC-12.Z"), "abc-12.z");
  EXPECT_EQ(to_lower(""), "");
  EXPECT_EQ(to_lower("already"), "already");
}

TEST(Predicates, AllAlpha) {
  EXPECT_TRUE(is_all_alpha("abc"));
  EXPECT_FALSE(is_all_alpha("ab1"));
  EXPECT_FALSE(is_all_alpha(""));
  EXPECT_FALSE(is_all_alpha("a-b"));
}

TEST(Predicates, AllDigit) {
  EXPECT_TRUE(is_all_digit("0123"));
  EXPECT_FALSE(is_all_digit("12a"));
  EXPECT_FALSE(is_all_digit(""));
}

TEST(Predicates, AllAlnum) {
  EXPECT_TRUE(is_all_alnum("ab12"));
  EXPECT_FALSE(is_all_alnum("ab-12"));
  EXPECT_FALSE(is_all_alnum(""));
}

TEST(Affixes, EndsWith) {
  EXPECT_TRUE(ends_with("core1.ntt.net", ".ntt.net"));
  EXPECT_FALSE(ends_with("net", ".net"));
  EXPECT_TRUE(ends_with("x", ""));
}

TEST(Affixes, StartsWith) {
  EXPECT_TRUE(starts_with("hoiho", "hoi"));
  EXPECT_FALSE(starts_with("ho", "hoi"));
}

TEST(Split, DropsEmptyFields) {
  const auto v = split("a..b.c.", ".");
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], "a");
  EXPECT_EQ(v[1], "b");
  EXPECT_EQ(v[2], "c");
}

TEST(Split, MultipleDelims) {
  const auto v = split("xe-0-0.gw1", "-.");
  ASSERT_EQ(v.size(), 4u);
  EXPECT_EQ(v[0], "xe");
  EXPECT_EQ(v[3], "gw1");
}

TEST(Split, KeepEmpty) {
  const auto v = split_keep_empty("a,,b", ',');
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[1], "");
}

TEST(Join, Basic) {
  EXPECT_EQ(join({"a", "b", "c"}, "."), "a.b.c");
  EXPECT_EQ(join({}, "."), "");
  EXPECT_EQ(join({"one"}, "."), "one");
}

TEST(SplitTokens, RecordsPositions) {
  const auto v = split_tokens("ab.cde.f", '.');
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0].text, "ab");
  EXPECT_EQ(v[0].begin, 0u);
  EXPECT_EQ(v[1].text, "cde");
  EXPECT_EQ(v[1].begin, 3u);
  EXPECT_EQ(v[2].end, 8u);
}

TEST(CharKindTest, Classification) {
  EXPECT_EQ(char_kind('a'), CharKind::kAlpha);
  EXPECT_EQ(char_kind('7'), CharKind::kDigit);
  EXPECT_EQ(char_kind('-'), CharKind::kPunct);
  EXPECT_EQ(char_kind('.'), CharKind::kPunct);
}

TEST(AlphaRuns, PaperZayoExample) {
  // zayo-ntt.mpr1.lhr15.uk.zip -> zayo ntt mpr lhr uk zip (paper §5.2).
  const auto runs = alpha_runs("zayo-ntt.mpr1.lhr15.uk.zip");
  ASSERT_EQ(runs.size(), 6u);
  EXPECT_EQ(runs[0].text, "zayo");
  EXPECT_EQ(runs[1].text, "ntt");
  EXPECT_EQ(runs[2].text, "mpr");
  EXPECT_EQ(runs[3].text, "lhr");
  EXPECT_EQ(runs[4].text, "uk");
  EXPECT_EQ(runs[5].text, "zip");
}

TEST(AlphaRuns, PositionsPointIntoSource) {
  const std::string s = "ab12cd";
  const auto runs = alpha_runs(s);
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_EQ(runs[1].begin, 4u);
  EXPECT_EQ(runs[1].end, 6u);
}

TEST(AlnumRuns, SplitsOnPunctOnly) {
  const auto runs = alnum_runs("529bryant-2.ce");
  ASSERT_EQ(runs.size(), 3u);
  EXPECT_EQ(runs[0].text, "529bryant");
  EXPECT_EQ(runs[1].text, "2");
  EXPECT_EQ(runs[2].text, "ce");
}

TEST(KindRuns, AlternatingKinds) {
  const auto runs = kind_runs("ash1-bcr2");
  ASSERT_EQ(runs.size(), 5u);
  EXPECT_EQ(runs[0].text, "ash");
  EXPECT_EQ(runs[1].text, "1");
  EXPECT_EQ(runs[2].text, "-");
  EXPECT_EQ(runs[3].text, "bcr");
  EXPECT_EQ(runs[4].text, "2");
}

TEST(SquashAlnum, StripsPunctLowercases) {
  EXPECT_EQ(squash_alnum("111-8th-Ave"), "1118thave");
  EXPECT_EQ(squash_alnum("---"), "");
}

TEST(RegexEscape, EscapesMeta) {
  EXPECT_EQ(regex_escape("a.b"), "a\\.b");
  EXPECT_EQ(regex_escape("a-b+c"), "a-b\\+c");  // dash is literal in the dialect
  EXPECT_EQ(regex_escape("plain"), "plain");
}

TEST(Format, FmtDouble) {
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_double(1.0, 0), "1");
}

TEST(Format, FmtPct) {
  EXPECT_EQ(fmt_pct(55, 100), "55.0%");
  EXPECT_EQ(fmt_pct(1, 0), "-");
  EXPECT_EQ(fmt_pct(1, 3, 0), "33%");
}

TEST(Format, FmtCount) {
  EXPECT_EQ(fmt_count(2'560'000), "2.56M");
  EXPECT_EQ(fmt_count(559'000), "559K");
  EXPECT_EQ(fmt_count(995), "995");
  EXPECT_EQ(fmt_count(84'000), "84K");
  EXPECT_EQ(fmt_count(25'600'000), "25.6M");
}

}  // namespace
}  // namespace hoiho::util
