// Malformed-input corpus tests for the three file loaders (itdk_io, rtt_io,
// dictionary_io): lenient mode must skip and count each corrupt line under
// the right category, strict mode must fail with a named error, and the
// hard caps must stay fatal in both modes.

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "geo/dictionary_io.h"
#include "measure/rtt_io.h"
#include "topo/itdk_io.h"

using namespace hoiho;

namespace {

// --- itdk_io -----------------------------------------------------------------

std::string nodes_corpus(std::size_t good, const std::string& dirt) {
  std::string out = "# test nodes\n";
  for (std::size_t i = 0; i < good; ++i) {
    out += "node N" + std::to_string(i) + ": 10.0." + std::to_string(i / 256) + "." +
           std::to_string(i % 256) + "\n";
    if (i == good / 2) out += dirt;  // bury the dirt mid-file
  }
  return out;
}

TEST(LenientItdk, SkipsAndCountsCorruptLines) {
  // Three corrupt lines: truncated, NUL-injected, and plain garbage.
  const std::string dirt =
      "node\n"
      "node N9: 10.9.9.9\x01garbage\n"
      "this line fell off a truck\n";
  std::istringstream nodes(nodes_corpus(40, dirt));
  io::LoadOptions opt;
  opt.lenient = true;
  io::LoadReport report;
  const auto topo = topo::read_itdk(nodes, nullptr, opt, &report);
  ASSERT_TRUE(topo.has_value()) << report.error;
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(topo->size(), 40u);
  EXPECT_EQ(report.records, 40u);
  EXPECT_EQ(report.skipped_total(), 3u);
  EXPECT_EQ(report.skipped_count("bad_node_line"), 3u);
  EXPECT_FALSE(report.diagnostics.empty());
}

TEST(LenientItdk, StrictStillFailsWithNamedError) {
  std::istringstream nodes(nodes_corpus(10, "not a node line\n"));
  io::LoadReport report;
  const auto topo = topo::read_itdk(nodes, nullptr, io::LoadOptions{}, &report);
  EXPECT_FALSE(topo.has_value());
  EXPECT_FALSE(report.ok());
  EXPECT_NE(report.error.find("node"), std::string::npos) << report.error;
}

TEST(LenientItdk, NamesDirtCountedSeparately) {
  std::istringstream nodes("node N0: 10.0.0.1\n");
  std::istringstream names(
      "10.0.0.1 r1.example.net\n"
      "lonely-token\n"
      "bad\x02""addr host\n");
  io::LoadOptions opt;
  opt.lenient = true;
  io::LoadReport report;
  const auto topo = topo::read_itdk(nodes, &names, opt, &report);
  ASSERT_TRUE(topo.has_value());
  EXPECT_EQ(report.skipped_count("bad_name_line"), 2u);
}

TEST(LenientItdk, OversizedLineCategorized) {
  std::string corpus = "node N0: 10.0.0.1\n";
  corpus += "node N1: " + std::string(300, 'a') + "\n";
  std::istringstream nodes(corpus);
  io::LoadOptions opt;
  opt.lenient = true;
  opt.max_line_bytes = 128;
  io::LoadReport report;
  const auto topo = topo::read_itdk(nodes, nullptr, opt, &report);
  ASSERT_TRUE(topo.has_value());
  EXPECT_EQ(report.skipped_count("oversized_line"), 1u);
  EXPECT_EQ(topo->size(), 1u);
}

TEST(LenientItdk, RecordCapFatalEvenWhenLenient) {
  std::istringstream nodes(nodes_corpus(20, ""));
  io::LoadOptions opt;
  opt.lenient = true;
  opt.max_records = 5;
  io::LoadReport report;
  const auto topo = topo::read_itdk(nodes, nullptr, opt, &report);
  EXPECT_FALSE(topo.has_value());
  EXPECT_NE(report.error.find("record cap"), std::string::npos) << report.error;
}

// --- rtt_io ------------------------------------------------------------------

TEST(LenientRtt, EveryCategoryCounted) {
  const std::string corpus =
      "# measurements\n"
      "V,ams,nl,52.37,4.90\n"
      "V,nyc,us,40.71,-74.00\n"
      "V,ams,nl,52.37,4.90\n"        // duplicate_vp
      "V,bad,xx,91.0,0.0\n"          // bad_coords (lat out of range)
      "V,worse,xx,abc,0.0\n"         // bad_number
      "V,short\n"                    // bad_fields
      "R,0,ams,12.5\n"
      "R,1,nyc,80.25\n"
      "R,0,nyc,12.5ms\n"             // bad_number (trailing junk)
      "R,9,ams,10.0\n"               // router_out_of_range (2 routers)
      "R,1,ams,-3.0\n"               // negative_rtt
      "R,0,ghost,5.0\n"              // unknown_vp
      "X,mystery\n";                 // unknown_record
  std::istringstream in(corpus);
  io::LoadOptions opt;
  opt.lenient = true;
  io::LoadReport report;
  const auto meas = measure::load_measurements(in, 2, opt, &report);
  ASSERT_TRUE(meas.has_value()) << report.error;
  EXPECT_EQ(meas->vps.size(), 2u);
  EXPECT_EQ(report.records, 4u);  // 2 VPs + 2 samples survived
  EXPECT_EQ(report.skipped_count("duplicate_vp"), 1u);
  EXPECT_EQ(report.skipped_count("bad_coords"), 1u);
  EXPECT_EQ(report.skipped_count("bad_number"), 2u);
  EXPECT_EQ(report.skipped_count("bad_fields"), 1u);
  EXPECT_EQ(report.skipped_count("router_out_of_range"), 1u);
  EXPECT_EQ(report.skipped_count("negative_rtt"), 1u);
  EXPECT_EQ(report.skipped_count("unknown_vp"), 1u);
  EXPECT_EQ(report.skipped_count("unknown_record"), 1u);
  EXPECT_EQ(report.skipped_total(), 9u);
  ASSERT_TRUE(meas->pings.rtt(0, 0).has_value());
  EXPECT_DOUBLE_EQ(*meas->pings.rtt(0, 0), 12.5);
}

TEST(LenientRtt, StrictFailsOnFirstBadLineWithLineNumber) {
  std::istringstream in(
      "V,ams,nl,52.37,4.90\n"
      "R,0,ams,banana\n");
  io::LoadReport report;
  const auto meas = measure::load_measurements(in, 1, io::LoadOptions{}, &report);
  EXPECT_FALSE(meas.has_value());
  EXPECT_NE(report.error.find("line 2"), std::string::npos) << report.error;
}

TEST(LenientRtt, FivePercentCorruptionRecoversTheRest) {
  // 1 VP + 200 samples, every 20th sample corrupted (5%): lenient load must
  // recover exactly the 190 good samples and count exactly 10 skips.
  std::string corpus = "V,vp0,nl,52.0,4.0\n";
  std::size_t corrupted = 0;
  for (std::size_t i = 0; i < 200; ++i) {
    if (i % 20 == 19) {
      corpus += "R,0,vp0,\x7f\x01garbage\n";
      ++corrupted;
    } else {
      corpus += "R,0,vp0," + std::to_string(1.0 + 0.25 * static_cast<double>(i)) + "\n";
    }
  }
  std::istringstream in(corpus);
  io::LoadOptions opt;
  opt.lenient = true;
  io::LoadReport report;
  const auto meas = measure::load_measurements(in, 1, opt, &report);
  ASSERT_TRUE(meas.has_value()) << report.error;
  EXPECT_EQ(report.records, 1u + 200u - corrupted);
  EXPECT_EQ(report.skipped_total(), corrupted);
  EXPECT_GE(static_cast<double>(report.records),
            0.95 * static_cast<double>(1 + 200));

  std::istringstream again(corpus);
  io::LoadReport strict_report;
  EXPECT_FALSE(measure::load_measurements(again, 1, io::LoadOptions{}, &strict_report)
                   .has_value());
  EXPECT_FALSE(strict_report.ok());
}

TEST(LenientRtt, SampleCapFatal) {
  std::string corpus = "V,vp0,nl,52.0,4.0\n";
  for (int i = 0; i < 10; ++i) corpus += "R,0,vp0,1.0\n";
  std::istringstream in(corpus);
  io::LoadOptions opt;
  opt.lenient = true;
  opt.max_records = 4;
  io::LoadReport report;
  EXPECT_FALSE(measure::load_measurements(in, 1, opt, &report).has_value());
  EXPECT_NE(report.error.find("record cap"), std::string::npos);
}

// --- dictionary_io -----------------------------------------------------------

TEST(LenientDictionary, SkipsAndCountsPerCategory) {
  const std::string corpus =
      "L,amsterdam,nh,nl,52.37,4.90,800000\n"
      "L,new york,ny,us,40.71,-74.00,8000000\n"
      "L,broken,xx,yy,notalat,0.0,5\n"   // bad_number
      "L,short,record\n"                 // bad_fields
      "C,iata,ams,0\n"
      "C,teleport,xyz,0\n"               // unknown_code_type
      "C,iata,jfk,99\n"                  // index_out_of_range
      "A,mokum,0\n"
      "A,nowhere,42\n"                   // index_out_of_range
      "F,1 nieuwezijds voorburgwal,0\n"
      "Q,what,is,this\n";                // unknown_record
  std::istringstream in(corpus);
  io::LoadOptions opt;
  opt.lenient = true;
  io::LoadReport report;
  const auto dict = geo::load_dictionary(in, opt, &report);
  ASSERT_TRUE(dict.has_value()) << report.error;
  EXPECT_EQ(dict->size(), 2u);
  EXPECT_EQ(report.records, 5u);  // 2 L + 1 C + 1 A + 1 F
  EXPECT_EQ(report.skipped_count("bad_number"), 1u);
  EXPECT_EQ(report.skipped_count("bad_fields"), 1u);
  EXPECT_EQ(report.skipped_count("unknown_code_type"), 1u);
  EXPECT_EQ(report.skipped_count("index_out_of_range"), 2u);
  EXPECT_EQ(report.skipped_count("unknown_record"), 1u);
  EXPECT_EQ(report.skipped_total(), 6u);
}

TEST(LenientDictionary, StrictNamesTheProblem) {
  std::istringstream in("L,city,st,cc,1.0,2.0,10\nC,teleport,xyz,0\n");
  io::LoadOptions opt;  // strict
  io::LoadReport report;
  EXPECT_FALSE(geo::load_dictionary(in, opt, &report).has_value());
  EXPECT_NE(report.error.find("teleport"), std::string::npos) << report.error;
  EXPECT_NE(report.error.find("line 2"), std::string::npos) << report.error;
}

TEST(LenientDictionary, LegacyStrictWrapperStillReportsError) {
  std::istringstream in("L,city,st,cc,bad,2.0,10\n");
  std::string error;
  EXPECT_FALSE(geo::load_dictionary(in, &error).has_value());
  EXPECT_FALSE(error.empty());
}

TEST(LenientDictionary, DiagnosticsCappedButCountsExact) {
  std::string corpus;
  for (int i = 0; i < 30; ++i) corpus += "Z,junk\n";
  std::istringstream in(corpus);
  io::LoadOptions opt;
  opt.lenient = true;
  opt.max_diagnostics = 4;
  io::LoadReport report;
  ASSERT_TRUE(geo::load_dictionary(in, opt, &report).has_value());
  EXPECT_EQ(report.diagnostics.size(), 4u);
  EXPECT_EQ(report.skipped_count("unknown_record"), 30u);
  EXPECT_NE(report.summary().find("unknown_record=30"), std::string::npos)
      << report.summary();
}

}  // namespace
